// Package controller implements Nezha's control plane (§4): periodic
// utilization monitoring, seamless vNIC offload and fallback through
// the dual-running → final stage workflow, FE selection (same-ToR
// idle vSwitches with similar attributes), remote-pool scale-out and
// scale-in per the Fig 8 thresholds, and failover on FE crashes
// reported by the health monitor.
//
// All mutations travel over the ctrlrpc transport: acked requests on
// the fabric with bounded retries, exponential backoff, and per-vNIC
// config epochs. Offload and scale-out are two-phase — prepare
// (install rule tables on the target FEs, gather acks) then commit
// (flip the BE config and the gateway) — so the gateway never steers
// traffic at an FE that has not acknowledged its tables. A failed
// prepare or commit rolls partially-installed FEs back and leaves the
// vNIC in its previous, safe configuration; an aborted offload is
// retriable after a cooldown, and a pool stuck below MinFEs enters an
// explicit degraded state that a periodic repair loop keeps trying to
// replenish and reconcile.
package controller

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"nezha/internal/ctrlrpc"
	"nezha/internal/fabric"
	"nezha/internal/journal"
	"nezha/internal/metrics"
	"nezha/internal/nic"
	"nezha/internal/obs"
	"nezha/internal/packet"
	"nezha/internal/prof"
	"nezha/internal/sim"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
)

// DefaultRPCAddr is the controller transport's fabric address.
var DefaultRPCAddr = packet.MakeIP(10, 0, 0, 253)

// DefaultGatewayAddr is the gateway agent's fabric address.
var DefaultGatewayAddr = packet.MakeIP(10, 0, 0, 252)

// Config holds the control-plane policy knobs, defaulting to the
// paper's production values.
type Config struct {
	// OffloadThreshold triggers remote offloading of local vNICs
	// (70%, Fig 8).
	OffloadThreshold float64
	// ScaleThreshold triggers scale-out/in of the FE pool (40%).
	ScaleThreshold float64
	// SafeLevel is the utilization offloading aims to get under.
	SafeLevel float64
	// IdleBar is the maximum utilization for an FE candidate.
	IdleBar float64
	// InitialFEs is the starting FE count (4, Appendix B.2).
	InitialFEs int
	// MinFEs is the floor maintained through failover (4, §4.4).
	MinFEs int
	// ReportInterval is how often vSwitches report utilization.
	ReportInterval sim.Time
	// ConfigPushMu/Sigma parameterize the lognormal per-FE config
	// push delay; completion times (Table 4) derive from the slowest
	// push plus the learning interval.
	ConfigPushMu    float64
	ConfigPushSigma float64
	// RTTAllowance pads the dual-running stage beyond the learning
	// interval before deleting BE tables ("200ms + RTT", §4.2.1).
	RTTAllowance sim.Time
	// FallbackCheckInterval paces fallback evaluation; 0 disables
	// automatic fallback.
	FallbackCheckInterval sim.Time
	// ScaleCooldown is the minimum spacing between scale-outs of one
	// vNIC's pool, covering config pushes and the learning interval
	// so a single pressure episode scales once (Fig 11: 4 → 8).
	ScaleCooldown sim.Time
	// BadLinkTTL is how long a BE-FE pair reported unreachable by the
	// mutual ping (§C.1) is kept out of FE selection for that BE —
	// without it, replenishment happily re-picks the partitioned FE.
	BadLinkTTL sim.Time

	// RPCAddr / GatewayAddr are the fabric addresses of the
	// controller's RPC transport and the gateway's management agent.
	RPCAddr     packet.IPv4
	GatewayAddr packet.IPv4
	// RPCTimeout / RPCMaxAttempts / RPCBackoff / RPCMaxBackoff tune
	// the acked-request transport (see ctrlrpc.Options).
	RPCTimeout     sim.Time
	RPCMaxAttempts int
	RPCBackoff     sim.Time
	RPCMaxBackoff  sim.Time
	// PrepareDeadline bounds the prepare phase: installs not acked by
	// then are treated as failed and the transaction resolves.
	PrepareDeadline sim.Time
	// PrepareQuorumFrac is the fraction of prepare targets that must
	// ack for an offload to commit (1.0 = all). Scale-out commits with
	// any non-empty acked subset.
	PrepareQuorumFrac float64
	// OffloadRetryCooldown keeps an aborted offload fully local (and
	// rejects retries) for this long.
	OffloadRetryCooldown sim.Time
	// RepairInterval paces the degraded-pool repair / reconciliation
	// loop.
	RepairInterval sim.Time
	// ExternalPolicy disables the controller's built-in threshold
	// decision tree (tick-driven offload/scale/fallback): monitoring,
	// failover, and repair keep running, but offload/fallback/scale
	// decisions are expected from an external driver — the
	// internal/policy loop — through the Actuator methods.
	ExternalPolicy bool
	// UnsafeDirectCommit restores the pre-transactional behavior:
	// fire-and-forget installs with the gateway flipped immediately,
	// before any FE has acked its tables. It exists as a negative
	// control so tests can prove the chaos no-blackhole invariant
	// catches exactly this bug.
	UnsafeDirectCommit bool
}

// DefaultConfig returns the production-calibrated policy.
func DefaultConfig() Config {
	cfg := Config{
		OffloadThreshold:      0.70,
		ScaleThreshold:        0.40,
		SafeLevel:             0.40,
		IdleBar:               0.30,
		InitialFEs:            4,
		MinFEs:                4,
		ReportInterval:        500 * sim.Millisecond,
		ConfigPushMu:          -0.54, // lognormal: median ~0.58 s
		ConfigPushSigma:       0.40,
		RTTAllowance:          5 * sim.Millisecond,
		FallbackCheckInterval: 10 * sim.Second,
		ScaleCooldown:         3 * sim.Second,
		BadLinkTTL:            60 * sim.Second,
	}
	cfg.fill()
	return cfg
}

// fill normalizes zero-valued transport and transaction knobs, so
// configs built field-by-field keep working.
func (cfg *Config) fill() {
	if cfg.RPCAddr == 0 {
		cfg.RPCAddr = DefaultRPCAddr
	}
	if cfg.GatewayAddr == 0 {
		cfg.GatewayAddr = DefaultGatewayAddr
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 500 * sim.Millisecond
	}
	if cfg.RPCMaxAttempts <= 0 {
		cfg.RPCMaxAttempts = 4
	}
	if cfg.RPCBackoff <= 0 {
		cfg.RPCBackoff = 200 * sim.Millisecond
	}
	if cfg.RPCMaxBackoff <= 0 {
		cfg.RPCMaxBackoff = sim.Second
	}
	if cfg.PrepareDeadline <= 0 {
		cfg.PrepareDeadline = 4 * sim.Second
	}
	if cfg.PrepareQuorumFrac <= 0 {
		cfg.PrepareQuorumFrac = 1.0
	}
	if cfg.OffloadRetryCooldown <= 0 {
		cfg.OffloadRetryCooldown = 5 * sim.Second
	}
	if cfg.RepairInterval <= 0 {
		cfg.RepairInterval = 2 * sim.Second
	}
}

// VNICInfo describes a manageable vNIC to the controller.
type VNICInfo struct {
	VNIC uint32
	// Home is the server hosting the vNIC's VM (its BE).
	Home packet.IPv4
	// MakeRules builds a fresh copy of the vNIC's rule tables, used
	// to configure FE instances and fallback.
	MakeRules func() *tables.RuleSet
	// Decap marks stateful decapsulation (§5.2).
	Decap bool
}

type nodeState struct {
	vs    *vswitch.VSwitch
	agent *ctrlrpc.Agent
	meter *nic.UtilMeter

	lastLocal, lastRemote uint64
	cpuUtil               float64
	memUtil               float64
	remoteShare           float64

	fronted map[uint32]bool // vNICs this node serves as FE
	down    bool
	// pendingRemoval tracks FE teardowns this node has not acked yet
	// (vNIC → epoch of the removal). The repair loop retries them so a
	// node that was unreachable during cleanup does not keep tables
	// forever.
	pendingRemoval map[uint32]uint64
}

// txnKind classifies a two-phase transaction.
type txnKind int

const (
	txnOffload txnKind = iota
	txnScaleOut
	txnFallback
)

// txn is one in-flight two-phase mutation of a vNIC's pool. A vNIC
// has at most one transaction at a time.
type txn struct {
	kind    txnKind
	epoch   uint64
	targets []packet.IPv4
	acked   map[packet.IPv4]bool
	failed  map[packet.IPv4]bool
	// committed, once set, is the FE subset the commit phase is
	// installing; a straggler install ack outside it is rolled back.
	committed map[packet.IPv4]bool
	resolved  bool
	deadline  sim.EventRef
	t0        sim.Time
}

// settled reports whether every prepare target has acked or failed.
func (tx *txn) settled() bool {
	for _, fa := range tx.targets {
		if !tx.acked[fa] && !tx.failed[fa] {
			return false
		}
	}
	return true
}

type vnicState struct {
	VNICInfo
	offloaded  bool
	inProgress bool
	fes        []packet.IPv4
	// epoch is the vNIC's config-epoch counter: reserved (bumped) when
	// a transaction or config push is created, so later pushes always
	// carry higher epochs and a stale transaction loses its commit.
	epoch      uint64
	txn        *txn
	memTrigger bool     // offload was triggered by memory, not CPU
	lastScale  sim.Time // last scale-out, for the cooldown
	scaling    bool     // a scale-out is in flight
	// degraded marks a pool stuck below MinFEs with no candidates; the
	// repair loop keeps trying to replenish it.
	degraded bool
	// dirty marks committed state whose propagation (gateway or BE
	// push) failed; the repair loop re-pushes it at a fresh epoch.
	dirty bool
	// gwPushes counts in-flight gateway config pushes. FE teardowns
	// and repair re-pushes wait for zero: until the gateway acks (or
	// definitively fails) a push, removing an FE's tables could
	// blackhole traffic the gateway still steers there.
	gwPushes int
	// retryAt blocks offload retries until the abort cooldown passes.
	retryAt sim.Time
	// pinned marks an operator-directed pool (§7.2): the controller
	// keeps it alive but does not grow it back to MinFEs — the
	// operator chose exactly those targets.
	pinned bool
	// staleFEs are installs from an aborted offload whose BE outcome
	// is unknown (OffloadStart timed out): they must not be torn down
	// until the BE acks an abort, or a revived BE could transmit at
	// ruleless FEs. Reconciled on NodeUp / repair ticks.
	staleFEs []packet.IPv4
}

// Events counts control-plane actions for the experiments.
type Events struct {
	Offloads  uint64
	Fallbacks uint64
	ScaleOuts uint64
	ScaleIns  uint64
	Failovers uint64
	FEsAdded  uint64
	// Aborts counts transactions (offload, scale-out, fallback) that
	// resolved without committing; Rollbacks counts FE installs torn
	// back down because their transaction aborted or superseded them.
	Aborts    uint64
	Rollbacks uint64
	// DegradedEnters / DegradedExits count pools crossing in and out
	// of the alarmed below-MinFEs state; RepairRuns counts repair-loop
	// replenish attempts.
	DegradedEnters uint64
	DegradedExits  uint64
	RepairRuns     uint64
}

// Controller is the centralized Nezha control plane.
type Controller struct {
	loop *sim.Loop
	fab  *fabric.Fabric
	gw   *fabric.Gateway
	rng  *sim.Rand
	cfg  Config

	rpc     *ctrlrpc.Transport
	gwAgent *ctrlrpc.GatewayAgent

	nodes map[packet.IPv4]*nodeState
	vnics map[uint32]*vnicState
	// badLinks[home][fe] records when the BE at home last reported fe
	// unreachable (§C.1).
	badLinks map[packet.IPv4]map[packet.IPv4]sim.Time
	// failoverAt records when NodeDown last ran for an address;
	// lastRebalance is the most recent time any vNIC's FE pool
	// changed. Both feed the chaos failover-bound invariant, whose
	// checker (and CLI status printers) may read from outside the sim
	// goroutine — statMu makes those reads race-free.
	statMu        sync.Mutex
	failoverAt    map[packet.IPv4]sim.Time
	lastRebalance sim.Time

	ticker       *sim.Ticker
	repairTicker *sim.Ticker
	fbTicker     *sim.Ticker

	// journal, when attached, is the write-ahead log every control
	// plane mutation lands on before its RPCs leave the controller.
	journal *journal.Journal
	// down marks a crashed controller; gen is bumped at every crash so
	// callbacks and scheduled events captured by a dead incarnation
	// no-op instead of mutating the recovered one's state.
	down bool
	gen  uint64
	// bufferedEvents holds monitor declarations (node down/up, bad
	// links) that arrived during an outage; Recover drains them in
	// arrival order once the journal is replayed.
	bufferedEvents []monEvent
	// recoverWait counts outstanding per-vNIC reconciliation chains;
	// recovery is complete when it reaches zero.
	recoverWait int
	// recoveries / recoverStart / recoveredAt (under statMu: the chaos
	// recovery-bound checker reads them off-goroutine) time recoveries.
	recoveries   uint64
	recoverStart sim.Time
	recoveredAt  sim.Time

	// prepareHook observes prepare-phase starts (vNIC, targets) — the
	// chaos engine uses it to kill or partition an FE mid-push.
	prepareHook func(uint32, []packet.IPv4)
	// onDegraded is the degraded-pool alarm callback.
	onDegraded func(uint32)

	// ob, when set by EnableObs, publishes controller gauges and
	// records transaction spans and lifecycle events.
	ob *obs.Obs

	// prof, when set by EnableProf, is the attribution profiler the
	// controller consults for offload suggestions. The raw ranking is
	// cached per drain generation: between drains the attribution
	// snapshot cannot have changed, so neither may the ranking.
	prof       *prof.Profiler
	profGen    uint64
	profRank   []prof.Candidate
	profRanked bool

	// OffloadCompletion records, per offload, the time from trigger
	// until all traffic flows through the FEs (Table 4).
	OffloadCompletion *metrics.Histogram
	Stats             Events
}

// New builds a controller. The fabric carries its config RPCs: the
// transport and the gateway's management agent register themselves at
// cfg.RPCAddr and cfg.GatewayAddr.
func New(loop *sim.Loop, fab *fabric.Fabric, gw *fabric.Gateway, cfg Config) *Controller {
	if cfg.InitialFEs == 0 {
		cfg = DefaultConfig()
	}
	cfg.fill()
	c := &Controller{
		loop:              loop,
		fab:               fab,
		gw:                gw,
		rng:               sim.NewRand(int64(loop.Rand().Uint64())),
		cfg:               cfg,
		nodes:             make(map[packet.IPv4]*nodeState),
		vnics:             make(map[uint32]*vnicState),
		badLinks:          make(map[packet.IPv4]map[packet.IPv4]sim.Time),
		failoverAt:        make(map[packet.IPv4]sim.Time),
		OffloadCompletion: metrics.NewHistogram("offload-completion-ms"),
	}
	c.rpc = ctrlrpc.NewTransport(loop, fab, sim.NewRand(int64(loop.Rand().Uint64())), ctrlrpc.Options{
		Addr:        cfg.RPCAddr,
		Timeout:     cfg.RPCTimeout,
		MaxAttempts: cfg.RPCMaxAttempts,
		Backoff:     cfg.RPCBackoff,
		MaxBackoff:  cfg.RPCMaxBackoff,
	})
	c.gwAgent = ctrlrpc.NewGatewayAgent(loop, fab, c.rpc, gw, cfg.GatewayAddr)
	return c
}

// RegisterNode adds a vSwitch to the managed fleet and attaches its
// control-RPC agent.
func (c *Controller) RegisterNode(vs *vswitch.VSwitch) {
	c.nodes[vs.Addr()] = &nodeState{
		vs:             vs,
		agent:          ctrlrpc.NewAgent(c.loop, c.fab, c.rpc, vs),
		meter:          nic.NewUtilMeter(vs.CPU()),
		fronted:        make(map[uint32]bool),
		pendingRemoval: make(map[uint32]uint64),
	}
}

// RegisterVNIC makes a vNIC manageable (it must already be installed
// at its home vSwitch and present in the gateway). The vNIC's epoch
// counter picks up from the gateway's installed entry.
func (c *Controller) RegisterVNIC(info VNICInfo) {
	v := &vnicState{VNICInfo: info, epoch: c.gw.Epoch(info.VNIC)}
	c.vnics[info.VNIC] = v
	c.journalPlacement(v)
}

// Start begins the periodic monitoring/decision loop and the
// degraded-pool repair loop.
func (c *Controller) Start() {
	c.ticker = c.loop.Every(c.cfg.ReportInterval, c.tick)
	c.repairTicker = c.loop.Every(c.cfg.RepairInterval, c.repairTick)
	if c.cfg.FallbackCheckInterval > 0 && !c.cfg.ExternalPolicy {
		c.fbTicker = c.loop.Every(c.cfg.FallbackCheckInterval, c.checkFallbacks)
	}
}

// Stop halts the decision, repair, and fallback loops.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
	if c.repairTicker != nil {
		c.repairTicker.Stop()
	}
	if c.fbTicker != nil {
		c.fbTicker.Stop()
	}
}

// Offloaded reports whether the controller considers vnic offloaded.
func (c *Controller) Offloaded(vnic uint32) bool {
	v, ok := c.vnics[vnic]
	return ok && v.offloaded
}

// FEsOf returns the FE addresses serving an offloaded vNIC.
func (c *Controller) FEsOf(vnic uint32) []packet.IPv4 {
	if v, ok := c.vnics[vnic]; ok {
		return append([]packet.IPv4(nil), v.fes...)
	}
	return nil
}

// Epoch reports a vNIC's current config epoch counter.
func (c *Controller) Epoch(vnic uint32) uint64 {
	if v, ok := c.vnics[vnic]; ok {
		return v.epoch
	}
	return 0
}

// Degraded reports whether a vNIC's pool is in the alarmed
// below-MinFEs degraded state.
func (c *Controller) Degraded(vnic uint32) bool {
	v, ok := c.vnics[vnic]
	return ok && v.degraded
}

// DegradedPools lists vNICs currently degraded, ascending.
func (c *Controller) DegradedPools() []uint32 {
	var out []uint32
	for id, v := range c.vnics {
		if v.degraded {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetOnDegraded installs the degraded-pool alarm callback (fired once
// per pool entering the degraded state).
func (c *Controller) SetOnDegraded(fn func(vnic uint32)) { c.onDegraded = fn }

// SetPrepareHook installs an observer fired when a prepare phase
// starts, with the vNIC and its target FEs. The chaos engine uses it
// to kill or partition targets mid-push.
func (c *Controller) SetPrepareHook(fn func(vnic uint32, targets []packet.IPv4)) {
	c.prepareHook = fn
}

// RPCAddr returns the controller transport's fabric address.
func (c *Controller) RPCAddr() packet.IPv4 { return c.rpc.Addr() }

// GatewayAgentAddr returns the gateway agent's fabric address.
func (c *Controller) GatewayAgentAddr() packet.IPv4 { return c.gwAgent.Addr() }

// RPCStats returns a copy of the transport's counters.
func (c *Controller) RPCStats() ctrlrpc.Stats { return c.rpc.Stats }

// EnableProf attaches the attribution profiler whose drained samples
// back SuggestOffload rankings.
func (c *Controller) EnableProf(p *prof.Profiler) { c.prof = p }

// SuggestOffload returns the profiler's ranked offload candidates —
// (vnic, table) pairs by relocatable cycles/bytes — filtered to vNICs
// this controller could actually act on: registered, not already
// offloaded, and with no transaction in flight. k bounds the result
// (0 = all). Returns nil when no profiler is attached.
//
// The underlying ranking is recomputed only when the profiler's drain
// generation has moved (a series read or obs snapshot drained fresh
// attribution); between drains repeated calls serve the cached
// ranking, so the answer is stable — only the liveness filter below
// reflects current transaction state.
func (c *Controller) SuggestOffload(k int) []prof.Candidate {
	if c.prof == nil {
		return nil
	}
	if gen := c.prof.DrainGen(); !c.profRanked || gen != c.profGen {
		c.profRank = c.prof.SuggestOffload(0)
		c.profGen = gen
		c.profRanked = true
	}
	var out []prof.Candidate
	for _, cand := range c.profRank {
		v, ok := c.vnics[cand.VNIC]
		if !ok || v.offloaded || v.inProgress {
			continue
		}
		out = append(out, cand)
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// NodeUtil returns the last sampled CPU utilization for a node
// (for experiments).
func (c *Controller) NodeUtil(addr packet.IPv4) float64 {
	if n, ok := c.nodes[addr]; ok {
		return n.cpuUtil
	}
	return 0
}

// sortedNodeAddrs returns registered node addresses ascending, so
// decision order never depends on map iteration (the determinism
// contract).
func (c *Controller) sortedNodeAddrs() []packet.IPv4 {
	addrs := make([]packet.IPv4, 0, len(c.nodes))
	for a := range c.nodes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// sortedVNICs returns registered vNIC ids ascending.
func (c *Controller) sortedVNICs() []uint32 {
	ids := make([]uint32, 0, len(c.vnics))
	for id := range c.vnics {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// tick samples every node and applies the Fig 8 decision tree.
func (c *Controller) tick() {
	addrs := c.sortedNodeAddrs()
	for _, addr := range addrs {
		n := c.nodes[addr]
		if n.down {
			continue
		}
		n.cpuUtil = n.meter.Sample()
		n.memUtil = n.vs.MemUtilization()
		local, remote := n.vs.CyclesLocal(), n.vs.CyclesRemote()
		dl, dr := local-n.lastLocal, remote-n.lastRemote
		n.lastLocal, n.lastRemote = local, remote
		if dl+dr > 0 {
			n.remoteShare = float64(dr) / float64(dl+dr)
		} else {
			n.remoteShare = 0
		}
	}
	if c.cfg.ExternalPolicy {
		// Meters sampled above stay fresh (NodeUtil, experiments);
		// the decision tree below belongs to the external policy loop.
		return
	}
	for _, addr := range addrs {
		n := c.nodes[addr]
		if n.down {
			continue
		}
		util := n.cpuUtil
		if n.memUtil > util {
			util = n.memUtil
		}
		if util <= c.cfg.ScaleThreshold {
			continue
		}
		if n.remoteShare > 0.5 && len(n.fronted) > 0 {
			// Hot because of hosted-FE work: scale out the pools.
			c.scaleOutFrom(addr, n)
			continue
		}
		// Hot because of local traffic.
		if len(n.fronted) > 0 {
			c.scaleIn(addr, n)
		}
		if util > c.cfg.OffloadThreshold {
			c.offloadFrom(addr, n)
		}
	}
}

// --- Offload ---------------------------------------------------------

// ErrNoIdleNodes reports that FE selection found no candidates.
var ErrNoIdleNodes = errors.New("controller: no idle vSwitches available as FEs")

// ErrCoolingDown reports an offload retry inside the abort cooldown.
var ErrCoolingDown = errors.New("controller: offload cooling down after abort")

// ErrBusy reports a mutation attempted while another transaction for
// the same vNIC is in flight.
var ErrBusy = errors.New("controller: vNIC has a transaction in flight")

// offloadFrom offloads vNICs from a hot node, in descending order of
// the triggering resource, until the projection falls to SafeLevel.
func (c *Controller) offloadFrom(addr packet.IPv4, n *nodeState) {
	memTriggered := n.memUtil > c.cfg.OffloadThreshold && n.memUtil >= n.cpuUtil
	loads := n.vs.VNICLoads()
	if memTriggered {
		sort.Slice(loads, func(i, j int) bool { return loads[i].RuleBytes > loads[j].RuleBytes })
	} else {
		sort.Slice(loads, func(i, j int) bool { return loads[i].Cycles > loads[j].Cycles })
	}
	util := n.cpuUtil
	if memTriggered {
		util = n.memUtil
	}
	totalCycles := uint64(0)
	for _, l := range loads {
		totalCycles += l.Cycles
	}
	for _, l := range loads {
		if util <= c.cfg.SafeLevel {
			break
		}
		v, ok := c.vnics[l.VNIC]
		if !ok || v.offloaded || v.inProgress || v.txn != nil || v.Home != addr {
			continue
		}
		if err := c.startOffload(v, nil); err != nil {
			continue
		}
		v.memTrigger = memTriggered
		// Project the relief: CPU relief ∝ the vNIC's cycle share;
		// memory relief ∝ its rule bytes.
		if memTriggered {
			util -= float64(l.RuleBytes) / float64(1<<30)
		} else if totalCycles > 0 {
			util -= n.cpuUtil * float64(l.Cycles) / float64(totalCycles) * 0.85
		}
	}
}

// ForceOffload triggers the offload workflow for one vNIC regardless
// of thresholds (used by experiments and operators).
func (c *Controller) ForceOffload(vnic uint32) error {
	v, ok := c.vnics[vnic]
	if !ok {
		return fmt.Errorf("controller: unknown vNIC %d", vnic)
	}
	if v.offloaded || v.inProgress {
		return nil
	}
	return c.startOffload(v, nil)
}

// OffloadTo offloads a vNIC to an operator-chosen FE set — the §7.2
// capabilities: steering a vNIC onto upgraded vSwitches to use a new
// feature, or onto bug-free (older) vSwitches for cost-effective
// fault recovery, without migrating the VM.
func (c *Controller) OffloadTo(vnic uint32, targets []packet.IPv4) error {
	v, ok := c.vnics[vnic]
	if !ok {
		return fmt.Errorf("controller: unknown vNIC %d", vnic)
	}
	if v.offloaded || v.inProgress || v.txn != nil {
		return fmt.Errorf("controller: vNIC %d already offloaded or in progress", vnic)
	}
	if len(targets) == 0 {
		return fmt.Errorf("controller: empty target set")
	}
	for _, a := range targets {
		n, ok := c.nodes[a]
		if !ok || n.down {
			return fmt.Errorf("controller: target %v unavailable", a)
		}
		if a == v.Home {
			return fmt.Errorf("controller: home cannot front itself")
		}
	}
	return c.startOffload(v, targets)
}

func (c *Controller) pushDelay() sim.Time {
	s := c.rng.LogNormal(c.cfg.ConfigPushMu, c.cfg.ConfigPushSigma)
	return sim.Time(s * float64(sim.Second))
}

// selectFEs picks count idle vSwitches, preferring the BE's ToR and
// low, similar utilization (§4.2.1, Appendix B.1).
func (c *Controller) selectFEs(home packet.IPv4, count int, exclude map[packet.IPv4]bool) []packet.IPv4 {
	homeToR := -1
	if hn, ok := c.nodes[home]; ok {
		homeToR = hn.vs.ToR()
	}
	type cand struct {
		addr  packet.IPv4
		tor   int
		util  float64
		vnics int
	}
	bad := c.badLinks[home]
	var cands []cand
	for addr, n := range c.nodes {
		if addr == home || n.down || exclude[addr] {
			continue
		}
		if when, isBad := bad[addr]; isBad && c.loop.Now()-when < c.cfg.BadLinkTTL {
			continue
		}
		util := n.cpuUtil
		if n.memUtil > util {
			util = n.memUtil
		}
		if util > c.cfg.IdleBar {
			continue
		}
		cands = append(cands, cand{addr, n.vs.ToR(), util, n.vs.NumVNICs()})
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := cands[i].tor == homeToR, cands[j].tor == homeToR
		if si != sj {
			return si // same-ToR first
		}
		// Prefer truly idle machines: fewer resident vNICs means less
		// local traffic to collide with later.
		if cands[i].vnics != cands[j].vnics {
			return cands[i].vnics < cands[j].vnics
		}
		if cands[i].util != cands[j].util {
			return cands[i].util < cands[j].util
		}
		return cands[i].addr < cands[j].addr
	})
	if len(cands) > count {
		cands = cands[:count]
	}
	out := make([]packet.IPv4, len(cands))
	for i, cd := range cands {
		out[i] = cd.addr
	}
	return out
}

// floorOf is the FE count below which a pool is considered short:
// MinFEs normally, 1 for operator-pinned pools (which must stay
// routable but are never grown beyond the operator's choice).
func (c *Controller) floorOf(v *vnicState) int {
	if v.pinned {
		return 1
	}
	return c.cfg.MinFEs
}

// quorum is the number of acked prepare targets an offload needs.
func (c *Controller) quorum(targets int) int {
	q := int(math.Ceil(c.cfg.PrepareQuorumFrac * float64(targets)))
	if q < 1 {
		q = 1
	}
	if q > targets {
		q = targets
	}
	return q
}

// startOffload runs the §4.2.1 workflow as a two-phase transaction:
// prepare installs rule tables on every target over acked RPCs; the
// commit phase flips the BE and then the gateway only once the
// prepare quorum is in. targets, when non-nil, bypasses FE selection
// (operator-directed redirection, §7.2).
func (c *Controller) startOffload(v *vnicState, targets []packet.IPv4) error {
	if v.txn != nil {
		return ErrBusy
	}
	now := c.loop.Now()
	if now < v.retryAt {
		return ErrCoolingDown
	}
	if _, ok := c.nodes[v.Home]; !ok {
		return fmt.Errorf("controller: vNIC %d home %v not registered", v.VNIC, v.Home)
	}
	feAddrs := targets
	if feAddrs == nil {
		feAddrs = c.selectFEs(v.Home, c.cfg.InitialFEs, nil)
	}
	if len(feAddrs) == 0 {
		return ErrNoIdleNodes
	}
	v.inProgress = true
	v.pinned = targets != nil
	v.epoch++
	tx := &txn{
		kind:    txnOffload,
		epoch:   v.epoch,
		targets: feAddrs,
		acked:   make(map[packet.IPv4]bool),
		failed:  make(map[packet.IPv4]bool),
		t0:      now,
	}
	v.txn = tx
	c.journalIntent(v, tx)
	c.spanBegin("offload", v.VNIC, tx.epoch)
	if c.prepareHook != nil {
		c.prepareHook(v.VNIC, feAddrs)
	}
	if c.cfg.UnsafeDirectCommit {
		c.unsafeCommitOffload(v, tx)
		return nil
	}
	for _, fa := range feAddrs {
		fa := fa
		c.call(fa, &ctrlrpc.Request{
			Op: ctrlrpc.OpInstallFE, VNIC: v.VNIC, Epoch: tx.epoch,
			Rules: v.MakeRules(), BE: v.Home, Decap: v.Decap,
			ApplyDelay: c.pushDelay(),
		}, func(err error) { c.prepareAck(v, tx, fa, err) })
	}
	tx.deadline = c.schedule(c.cfg.PrepareDeadline, func() { c.resolvePrepare(v, tx) })
	return nil
}

// prepareAck records one prepare target's outcome and resolves the
// transaction when all targets settled. Acks arriving after
// resolution are stragglers: an install that took hold but is not in
// the committed set is torn back down.
func (c *Controller) prepareAck(v *vnicState, tx *txn, fa packet.IPv4, err error) {
	if tx.resolved {
		if err == nil && !tx.committed[fa] {
			c.rollbackFE(fa, v.VNIC, tx.epoch)
		}
		return
	}
	if err != nil {
		tx.failed[fa] = true
	} else {
		tx.acked[fa] = true
	}
	if tx.settled() {
		c.resolvePrepare(v, tx)
	}
}

// failTxnTarget marks a prepare target unreachable (NodeDown /
// LinkDown racing the push): even if its install acked, an offload
// must not commit to an FE already reported dead.
func (c *Controller) failTxnTarget(v *vnicState, fa packet.IPv4) {
	tx := v.txn
	if tx == nil || tx.resolved {
		return
	}
	for _, t := range tx.targets {
		if t == fa {
			tx.failed[fa] = true
			if tx.settled() {
				c.resolvePrepare(v, tx)
			}
			return
		}
	}
}

// resolvePrepare closes the prepare phase (all targets settled, or
// the deadline fired) and either commits or aborts.
func (c *Controller) resolvePrepare(v *vnicState, tx *txn) {
	if tx.resolved || v.txn != tx {
		return
	}
	tx.resolved = true
	tx.deadline.Cancel()
	good := make([]packet.IPv4, 0, len(tx.targets))
	for _, fa := range tx.targets {
		if !tx.acked[fa] || tx.failed[fa] {
			continue
		}
		if n, ok := c.nodes[fa]; !ok || n.down {
			continue
		}
		good = append(good, fa)
	}
	switch tx.kind {
	case txnOffload:
		if len(good) < c.quorum(len(tx.targets)) {
			c.abortOffload(v, tx, false)
			return
		}
		c.commitOffload(v, tx, good)
	case txnScaleOut:
		if len(good) == 0 {
			c.abortScaleOut(v, tx)
			return
		}
		c.commitScaleOut(v, tx, good)
	}
}

// abortOffload rolls an uncommitted offload back: targets lose their
// installs, the vNIC stays fully local, and retries are rejected for
// the cooldown. beUnknown marks an abort whose OffloadStart timed out
// — the BE may believe it is offloaded, so the installs are parked in
// staleFEs and only torn down after the BE acks an abort (NodeUp /
// repair reconciliation).
func (c *Controller) abortOffload(v *vnicState, tx *txn, beUnknown bool) {
	c.Stats.Aborts++
	outcome := "aborted"
	if beUnknown {
		outcome = "aborted-be-unknown"
	}
	c.spanEnd("offload", v.VNIC, tx.epoch, outcome)
	c.ob.Event(c.loop.Now(), "txn-abort", v.Home, v.VNIC, "kind=offload epoch=%d be_unknown=%v", tx.epoch, beUnknown)
	v.txn = nil
	v.inProgress = false
	v.retryAt = c.loop.Now() + c.cfg.OffloadRetryCooldown
	c.journalResolve(v.VNIC, tx.epoch, false, nil)
	if beUnknown {
		v.staleFEs = append([]packet.IPv4(nil), tx.targets...)
		c.journalPlacement(v)
		c.reconcileStale(v)
		return
	}
	c.journalPlacement(v)
	c.rollbackTargets(v.VNIC, tx)
}

// rollbackTargets tears down every prepare target of an aborted
// transaction. Targets whose install state is unknown (timeout) are
// included: RemoveFE of an absent instance is a no-op.
func (c *Controller) rollbackTargets(vnic uint32, tx *txn) {
	for _, fa := range tx.targets {
		c.rollbackFE(fa, vnic, tx.epoch)
	}
}

// rollbackFE removes one FE install of an aborted transaction.
func (c *Controller) rollbackFE(fa packet.IPv4, vnic uint32, epoch uint64) {
	c.Stats.Rollbacks++
	c.ob.Event(c.loop.Now(), "txn-rollback", fa, vnic, "epoch=%d", epoch)
	if n, ok := c.nodes[fa]; ok {
		delete(n.fronted, vnic)
	}
	c.sendRemoveFE(fa, vnic, epoch)
}

// sendRemoveFE issues an acked FE teardown, tracked in the node's
// pendingRemoval set until acked so the repair loop can retry nodes
// that were unreachable.
func (c *Controller) sendRemoveFE(fa packet.IPv4, vnic uint32, epoch uint64) {
	if n, ok := c.nodes[fa]; ok {
		if old, have := n.pendingRemoval[vnic]; !have || epoch > old {
			n.pendingRemoval[vnic] = epoch
			c.journalRemoval(fa, vnic, epoch, false)
		}
	}
	c.call(fa, &ctrlrpc.Request{Op: ctrlrpc.OpRemoveFE, VNIC: vnic, Epoch: epoch}, func(err error) {
		if err != nil {
			return // left in pendingRemoval for the repair loop
		}
		if n, ok := c.nodes[fa]; ok && n.pendingRemoval[vnic] <= epoch {
			delete(n.pendingRemoval, vnic)
			c.journalRemoval(fa, vnic, epoch, true)
		}
	})
}

// commitOffload runs the commit phase: acked OffloadStart at the BE,
// then the acked gateway flip. Only after both does the controller
// consider the vNIC offloaded.
func (c *Controller) commitOffload(v *vnicState, tx *txn, good []packet.IPv4) {
	tx.committed = make(map[packet.IPv4]bool, len(good))
	for _, fa := range good {
		tx.committed[fa] = true
	}
	c.call(v.Home, &ctrlrpc.Request{
		Op: ctrlrpc.OpOffloadStart, VNIC: v.VNIC, Epoch: tx.epoch, FEs: good,
	}, func(err error) {
		if err != nil {
			// The startOffload leak fix: a BE that rejected (or never
			// answered) OffloadStart must not leave the prepared FEs
			// holding tables and fronted entries forever.
			tx.committed = nil
			c.abortOffload(v, tx, errors.Is(err, ctrlrpc.ErrTimeout))
			return
		}
		c.call(c.gwAgent.Addr(), &ctrlrpc.Request{
			Op: ctrlrpc.OpGatewaySet, VNIC: v.VNIC, Epoch: tx.epoch, FEs: good,
		}, func(gerr error) {
			// The BE is dual-running: both the old route (BE, rules
			// retained) and the new one (prepared FEs) can serve, so
			// whatever the gateway did, adopting the commit is safe.
			// A failed or unknown gateway push just marks the vNIC
			// dirty for re-push at a fresh epoch.
			c.finishOffload(v, tx, good, gerr != nil)
		})
	})
}

// finishOffload installs the committed state controller-side.
func (c *Controller) finishOffload(v *vnicState, tx *txn, good []packet.IPv4, dirty bool) {
	outcome := "committed"
	if dirty {
		outcome = "committed-dirty"
	}
	c.spanEnd("offload", v.VNIC, tx.epoch, outcome)
	c.ob.Event(c.loop.Now(), "txn-commit", v.Home, v.VNIC, "kind=offload epoch=%d fes=%d dirty=%v", tx.epoch, len(good), dirty)
	v.offloaded = true
	v.fes = append([]packet.IPv4(nil), good...)
	v.txn = nil
	v.inProgress = false
	v.dirty = dirty
	c.journalResolve(v.VNIC, tx.epoch, true, good)
	c.journalPlacement(v)
	for _, fa := range good {
		if n, ok := c.nodes[fa]; ok {
			n.fronted[v.VNIC] = true
			c.clearRemoval(n, fa, v.VNIC)
		}
	}
	completion := c.loop.Now() + fabric.LearnInterval - tx.t0
	c.OffloadCompletion.Observe(completion.Millis())
	c.noteRebalance()
	c.Stats.Offloads++
	c.Stats.FEsAdded += uint64(len(good))
	if len(v.fes) < c.floorOf(v) {
		c.enterDegraded(v)
	} else {
		c.exitDegraded(v)
	}
	if !dirty {
		epoch := tx.epoch
		c.schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
			// Final stage: the BE deletes its tables. A failed push
			// leaves the vNIC dual-running — safe, just not reclaiming
			// memory — and a later fallback/offload cycle re-resolves it.
			c.call(v.Home, &ctrlrpc.Request{
				Op: ctrlrpc.OpOffloadFinalize, VNIC: v.VNIC, Epoch: epoch,
			}, nil)
		})
	}
	// When dirty the gateway may still route at the home: the BE stays
	// dual-running (tables retained) until the repair loop lands a
	// clean push. Finalizing now could delete rules traffic still uses.
	c.pruneDown(v)
}

// unsafeCommitOffload is the negative-control path: fire-and-forget
// installs with the BE and gateway flipped immediately — the gateway
// steers traffic at FEs that have not acked tables yet, which is
// precisely what the chaos no-blackhole invariant fires on.
func (c *Controller) unsafeCommitOffload(v *vnicState, tx *txn) {
	c.spanEnd("offload", v.VNIC, tx.epoch, "unsafe-commit")
	c.ob.Event(c.loop.Now(), "unsafe-commit", v.Home, v.VNIC, "epoch=%d fes=%d", tx.epoch, len(tx.targets))
	for _, fa := range tx.targets {
		c.call(fa, &ctrlrpc.Request{
			Op: ctrlrpc.OpInstallFE, VNIC: v.VNIC, Epoch: tx.epoch,
			Rules: v.MakeRules(), BE: v.Home, Decap: v.Decap,
			ApplyDelay: c.pushDelay(),
		}, nil)
	}
	c.call(v.Home, &ctrlrpc.Request{
		Op: ctrlrpc.OpOffloadStart, VNIC: v.VNIC, Epoch: tx.epoch, FEs: tx.targets,
	}, nil)
	c.call(c.gwAgent.Addr(), &ctrlrpc.Request{
		Op: ctrlrpc.OpGatewaySet, VNIC: v.VNIC, Epoch: tx.epoch, FEs: tx.targets,
	}, nil)
	tx.resolved = true
	v.offloaded = true
	v.fes = append([]packet.IPv4(nil), tx.targets...)
	v.txn = nil
	v.inProgress = false
	c.journalResolve(v.VNIC, tx.epoch, true, tx.targets)
	c.journalPlacement(v)
	for _, fa := range tx.targets {
		if n, ok := c.nodes[fa]; ok {
			n.fronted[v.VNIC] = true
		}
	}
	c.Stats.Offloads++
	c.Stats.FEsAdded += uint64(len(tx.targets))
	epoch := tx.epoch
	c.schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
		c.call(v.Home, &ctrlrpc.Request{
			Op: ctrlrpc.OpOffloadFinalize, VNIC: v.VNIC, Epoch: epoch,
		}, nil)
	})
}

// --- Pool maintenance -------------------------------------------------

// pushConfig propagates v's current committed pool to the gateway and
// the BE at a fresh epoch. A failed push marks the vNIC dirty; the
// repair loop re-pushes until both endpoints ack.
func (c *Controller) pushConfig(v *vnicState) {
	c.pushConfigThen(v, nil)
}

// pushConfigThen is pushConfig with a completion hook on the gateway
// leg: then(gwErr) fires once the gateway push acks or definitively
// fails. Teardown paths use it to order FE removal strictly after the
// gateway stops steering traffic there. In-flight pushes are counted
// in v.gwPushes so the repair loop does not race a pending ack.
func (c *Controller) pushConfigThen(v *vnicState, then func(gwErr error)) {
	if v.offloaded && len(v.fes) == 0 {
		// An emptied pool has no pushable state: an empty gateway set
		// routes at nothing, and flipping home is unsafe until the BE
		// re-acks its tables. Keep the gateway's last entry (its FEs
		// retain their tables) and stay dirty for the repair loop,
		// which replenishes the pool or runs the acked fallback.
		v.dirty = true
		return
	}
	v.epoch++
	epoch := v.epoch
	v.dirty = false
	c.journalPlacement(v)
	set := []packet.IPv4{v.Home}
	if v.offloaded {
		set = append([]packet.IPv4(nil), v.fes...)
	}
	v.gwPushes++
	c.call(c.gwAgent.Addr(), &ctrlrpc.Request{
		Op: ctrlrpc.OpGatewaySet, VNIC: v.VNIC, Epoch: epoch, FEs: set,
	}, func(err error) {
		v.gwPushes--
		if err != nil && v.epoch == epoch {
			v.dirty = true
		}
		if then != nil {
			then(err)
		}
	})
	if !v.offloaded {
		return
	}
	if hn, ok := c.nodes[v.Home]; ok && !hn.down {
		c.call(v.Home, &ctrlrpc.Request{
			Op: ctrlrpc.OpSetFEs, VNIC: v.VNIC, Epoch: epoch, FEs: set,
		}, func(err error) {
			if err != nil && v.epoch == epoch {
				v.dirty = true
			}
		})
	}
}

// removeFromPool drops fa from v's pool, pushes the shrunk config,
// and tears the FE instance down — but only once the gateway ack
// confirms traffic is no longer steered at fa (plus the learning
// interval when graceful: stale senders may still steer there). If
// the gateway push fails the removal is parked in pendingRemoval for
// the repair loop rather than risking a blackhole. Reports whether fa
// was a member.
func (c *Controller) removeFromPool(v *vnicState, fa packet.IPv4, graceful bool) bool {
	had := false
	kept := v.fes[:0]
	for _, a := range v.fes {
		if a == fa {
			had = true
			continue
		}
		kept = append(kept, a)
	}
	if !had {
		return false
	}
	v.fes = kept
	c.noteRebalance()
	if n, ok := c.nodes[fa]; ok {
		delete(n.fronted, v.VNIC)
	}
	if v.offloaded && len(v.fes) == 0 {
		// The pool just emptied (e.g. its last member crashed with no
		// replacement candidates). Pushing the empty set would leave
		// the gateway routing at nothing, and flipping home is unsafe
		// until the BE re-acks its tables — so do neither: keep the
		// gateway entry as-is (fa retains its tables; the removal is
		// parked, not sent), flag the pool degraded, and let the
		// repair loop either replenish it or run the acked two-step
		// fallback.
		c.enterDegraded(v)
		if n, ok := c.nodes[fa]; ok {
			if old, has := n.pendingRemoval[v.VNIC]; !has || old < v.epoch {
				n.pendingRemoval[v.VNIC] = v.epoch
				c.journalRemoval(fa, v.VNIC, v.epoch, false)
			}
		}
		c.journalPlacement(v)
		return true
	}
	vnic := v.VNIC
	c.pushConfigThen(v, func(gwErr error) {
		n, ok := c.nodes[fa]
		epoch := v.epoch
		if gwErr != nil {
			// Gateway state unknown: it may still steer traffic at fa.
			// Park the removal; the repair loop retries it only after a
			// clean re-push (the vNIC is dirty until then).
			if ok {
				if old, has := n.pendingRemoval[vnic]; !has || old < epoch {
					n.pendingRemoval[vnic] = epoch
					c.journalRemoval(fa, vnic, epoch, false)
				}
			}
			return
		}
		if ok && n.down {
			// Victim crashed: RemoveFE cannot apply; pendingRemoval
			// handles it on revival (recorded by sendRemoveFE).
			c.sendRemoveFE(fa, vnic, epoch)
			return
		}
		if graceful {
			c.schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
				c.sendRemoveFE(fa, vnic, epoch)
			})
		} else {
			c.sendRemoveFE(fa, vnic, epoch)
		}
	})
	return true
}

// pruneDown sweeps pool members that were declared down while a
// commit was in flight (the monitor's declaration raced the
// transaction) and replenishes toward the floor.
func (c *Controller) pruneDown(v *vnicState) {
	if !v.offloaded {
		return
	}
	for _, fa := range append([]packet.IPv4(nil), v.fes...) {
		if n, ok := c.nodes[fa]; ok && n.down {
			c.removeFromPool(v, fa, false)
		}
	}
	if len(v.fes) < c.floorOf(v) {
		c.scaleOutOpts(v, c.floorOf(v)-len(v.fes), true)
	}
}

// enterDegraded flags a pool stuck below MinFEs and fires the alarm.
func (c *Controller) enterDegraded(v *vnicState) {
	if v.degraded {
		return
	}
	v.degraded = true
	c.Stats.DegradedEnters++
	c.ob.Event(c.loop.Now(), "degraded-enter", v.Home, v.VNIC, "fes=%d floor=%d", len(v.fes), c.floorOf(v))
	if c.onDegraded != nil {
		c.onDegraded(v.VNIC)
	}
}

func (c *Controller) exitDegraded(v *vnicState) {
	if !v.degraded {
		return
	}
	v.degraded = false
	c.Stats.DegradedExits++
	c.ob.Event(c.loop.Now(), "degraded-exit", v.Home, v.VNIC, "fes=%d", len(v.fes))
}

// reconcileStale retries the abort of an offload whose BE outcome was
// unknown: once the BE acks OffloadAbort (it is definitively local),
// the parked installs are safe to tear down.
func (c *Controller) reconcileStale(v *vnicState) {
	if len(v.staleFEs) == 0 {
		return
	}
	hn, ok := c.nodes[v.Home]
	if !ok || hn.down {
		return // retried on NodeUp / next repair tick
	}
	epoch := v.epoch
	stale := append([]packet.IPv4(nil), v.staleFEs...)
	c.call(v.Home, &ctrlrpc.Request{
		Op: ctrlrpc.OpOffloadAbort, VNIC: v.VNIC, Epoch: epoch,
	}, func(err error) {
		if err != nil {
			return
		}
		if v.offloaded || v.txn != nil {
			// A newer offload won the race; its commit owns the pool
			// and the stale set was absorbed or re-installed at a
			// higher epoch (which rollback at `epoch` cannot touch).
			v.staleFEs = nil
			c.journalPlacement(v)
			return
		}
		for _, fa := range stale {
			c.rollbackFE(fa, v.VNIC, epoch)
		}
		v.staleFEs = nil
		c.journalPlacement(v)
	})
}

// repairTick is the periodic reconciliation loop: re-push dirty
// config, replenish degraded pools, finish deferred fallback
// cleanups, resolve unknown-BE aborts, and retry pending FE removals.
func (c *Controller) repairTick() {
	for _, vnic := range c.sortedVNICs() {
		v := c.vnics[vnic]
		if v.txn != nil {
			continue
		}
		if len(v.staleFEs) > 0 {
			c.reconcileStale(v)
		}
		if v.inProgress || v.gwPushes > 0 {
			// A gateway push is still in flight (the RPC retry window
			// can outlast a repair period); repairing on top of it
			// would race the pending ack's dirty verdict.
			continue
		}
		switch {
		case v.offloaded && len(v.fes) == 0:
			// Emptied pool: the gateway still routes at the last (dead
			// or unreachable) member, whose tables are retained. First
			// choice is replenishing; failing that, the acked two-step
			// fallback returns the vNIC home safely.
			c.enterDegraded(v)
			c.Stats.RepairRuns++
			if !c.scaleOutOpts(v, c.floorOf(v), true) {
				c.startFallback(v)
			}
		case v.dirty:
			c.Stats.RepairRuns++
			c.pushConfig(v)
		case v.offloaded && len(v.fes) < c.floorOf(v):
			c.enterDegraded(v)
			c.Stats.RepairRuns++
			c.scaleOutOpts(v, c.floorOf(v)-len(v.fes), true)
		case v.offloaded && len(v.fes) >= c.floorOf(v):
			c.exitDegraded(v)
		case !v.offloaded && len(v.fes) > 0:
			// Fallback committed but its FE cleanup was deferred
			// (gateway push had failed): the gateway now points home,
			// so tear the old FEs down after the learning interval.
			c.exitDegraded(v)
			v.inProgress = true
			fes := append([]packet.IPv4(nil), v.fes...)
			v.fes = nil
			c.journalPlacement(v)
			c.schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
				c.teardownFallbackFEs(v, fes)
				v.inProgress = false
			})
		case !v.offloaded:
			c.exitDegraded(v)
		}
	}
	for _, addr := range c.sortedNodeAddrs() {
		n := c.nodes[addr]
		if n.down {
			continue
		}
		c.retryPendingRemovals(addr, n)
	}
}

// retryPendingRemovals re-sends parked FE teardowns on a reachable
// node — but only for vNICs whose gateway view has converged. A
// removal parks when its gateway shrink failed; until a clean push
// lands, the gateway may still steer traffic at the FE, and tearing
// its tables down would blackhole that traffic.
func (c *Controller) retryPendingRemovals(addr packet.IPv4, n *nodeState) {
	if len(n.pendingRemoval) == 0 {
		return
	}
	vnics := make([]uint32, 0, len(n.pendingRemoval))
	for id := range n.pendingRemoval {
		vnics = append(vnics, id)
	}
	sort.Slice(vnics, func(i, j int) bool { return vnics[i] < vnics[j] })
	for _, id := range vnics {
		if v, ok := c.vnics[id]; ok &&
			(v.dirty || v.txn != nil || v.inProgress || v.gwPushes > 0 ||
				(v.offloaded && len(v.fes) == 0)) {
			// The emptied-pool case never pushed its shrink at all —
			// the gateway still routes at the parked FE by design.
			continue
		}
		c.sendRemoveFE(addr, id, n.pendingRemoval[id])
	}
}

// --- Scale-out / scale-in ---------------------------------------------

// scaleOutFrom relieves an FE-hosting node by doubling the FE pools
// of the vNICs it fronts (Fig 11 scales 4 → 8).
func (c *Controller) scaleOutFrom(addr packet.IPv4, n *nodeState) {
	vnics := make([]uint32, 0, len(n.fronted))
	for id := range n.fronted {
		vnics = append(vnics, id)
	}
	sort.Slice(vnics, func(i, j int) bool { return vnics[i] < vnics[j] })
	for _, vnic := range vnics {
		v, ok := c.vnics[vnic]
		if !ok || !v.offloaded {
			continue
		}
		c.scaleOut(v, len(v.fes))
	}
}

// scaleOut adds count FEs to a vNIC's pool (§4.3). A cooldown keeps
// one pressure episode from scaling the same pool repeatedly while
// the configuration is still propagating.
func (c *Controller) scaleOut(v *vnicState, count int) {
	c.scaleOutOpts(v, count, false)
}

// scaleOutOpts runs the scale-out two-phase transaction. The repair
// loop and failover replenishment bypass the cooldown. Reports
// whether a transaction was started.
func (c *Controller) scaleOutOpts(v *vnicState, count int, bypassCooldown bool) bool {
	if count < 1 {
		count = 1
	}
	if !v.offloaded || v.txn != nil || v.inProgress || v.scaling {
		return false
	}
	now := c.loop.Now()
	if !bypassCooldown && v.lastScale > 0 && now-v.lastScale < c.cfg.ScaleCooldown {
		return false
	}
	exclude := map[packet.IPv4]bool{}
	for _, fa := range v.fes {
		exclude[fa] = true
	}
	newFEs := c.selectFEs(v.Home, count, exclude)
	if len(newFEs) == 0 {
		// No candidates: a pool below the floor is now formally
		// degraded (alarmed, repaired periodically) instead of
		// silently staying short.
		if len(v.fes) < c.floorOf(v) {
			c.enterDegraded(v)
		}
		return false
	}
	v.scaling = true
	v.lastScale = now
	v.epoch++
	tx := &txn{
		kind:    txnScaleOut,
		epoch:   v.epoch,
		targets: newFEs,
		acked:   make(map[packet.IPv4]bool),
		failed:  make(map[packet.IPv4]bool),
		t0:      now,
	}
	v.txn = tx
	c.journalIntent(v, tx)
	c.spanBegin("scaleout", v.VNIC, tx.epoch)
	if c.prepareHook != nil {
		c.prepareHook(v.VNIC, newFEs)
	}
	for _, fa := range newFEs {
		fa := fa
		c.call(fa, &ctrlrpc.Request{
			Op: ctrlrpc.OpInstallFE, VNIC: v.VNIC, Epoch: tx.epoch,
			Rules: v.MakeRules(), BE: v.Home, Decap: v.Decap,
			ApplyDelay: c.pushDelay(),
		}, func(err error) { c.prepareAck(v, tx, fa, err) })
	}
	tx.deadline = c.schedule(c.cfg.PrepareDeadline, func() { c.resolvePrepare(v, tx) })
	return true
}

// abortScaleOut rolls an uncommitted scale-out back; the pool keeps
// its previous membership.
func (c *Controller) abortScaleOut(v *vnicState, tx *txn) {
	c.Stats.Aborts++
	c.spanEnd("scaleout", v.VNIC, tx.epoch, "aborted")
	c.ob.Event(c.loop.Now(), "txn-abort", v.Home, v.VNIC, "kind=scaleout epoch=%d", tx.epoch)
	v.txn = nil
	v.scaling = false
	c.journalResolve(v.VNIC, tx.epoch, false, nil)
	c.rollbackTargets(v.VNIC, tx)
	if v.offloaded && len(v.fes) < c.floorOf(v) {
		c.enterDegraded(v)
	}
}

// commitScaleOut merges the acked targets into the pool and pushes
// the grown set to the BE and the gateway. Commit-phase failures
// adopt the grown set anyway — every member holds acked rules, so the
// superset is safe — and mark the vNIC dirty for re-push.
func (c *Controller) commitScaleOut(v *vnicState, tx *txn, good []packet.IPv4) {
	newSet := append([]packet.IPv4(nil), v.fes...)
	added := 0
	for _, fa := range good {
		dup := false
		for _, have := range newSet {
			if have == fa {
				dup = true
				break
			}
		}
		if !dup {
			newSet = append(newSet, fa)
			added++
		}
	}
	if added == 0 {
		c.spanEnd("scaleout", v.VNIC, tx.epoch, "noop")
		v.txn = nil
		v.scaling = false
		c.journalResolve(v.VNIC, tx.epoch, true, v.fes)
		return
	}
	tx.committed = make(map[packet.IPv4]bool, len(good))
	for _, fa := range good {
		tx.committed[fa] = true
	}
	finish := func(dirty bool) {
		outcome := "committed"
		if dirty {
			outcome = "committed-dirty"
		}
		c.spanEnd("scaleout", v.VNIC, tx.epoch, outcome)
		c.ob.Event(c.loop.Now(), "txn-commit", v.Home, v.VNIC, "kind=scaleout epoch=%d added=%d dirty=%v", tx.epoch, added, dirty)
		v.fes = newSet
		v.txn = nil
		v.scaling = false
		if dirty {
			v.dirty = true
		}
		c.journalResolve(v.VNIC, tx.epoch, true, newSet)
		c.journalPlacement(v)
		for _, fa := range good {
			if n, ok := c.nodes[fa]; ok {
				n.fronted[v.VNIC] = true
				c.clearRemoval(n, fa, v.VNIC)
			}
		}
		c.noteRebalance()
		c.Stats.ScaleOuts++
		c.Stats.FEsAdded += uint64(added)
		if len(v.fes) >= c.floorOf(v) {
			c.exitDegraded(v)
		}
		c.pruneDown(v)
	}
	c.call(v.Home, &ctrlrpc.Request{
		Op: ctrlrpc.OpSetFEs, VNIC: v.VNIC, Epoch: tx.epoch, FEs: newSet,
	}, func(err error) {
		if err != nil {
			finish(true)
			return
		}
		c.call(c.gwAgent.Addr(), &ctrlrpc.Request{
			Op: ctrlrpc.OpGatewaySet, VNIC: v.VNIC, Epoch: tx.epoch, FEs: newSet,
		}, func(gerr error) { finish(gerr != nil) })
	})
}

// scaleIn removes every FE hosted on a node that now needs its
// resources for local traffic (§4.3). The FE's rule tables are
// retained for the learning interval + RTT before deletion.
func (c *Controller) scaleIn(addr packet.IPv4, n *nodeState) {
	if len(n.fronted) == 0 {
		return
	}
	c.Stats.ScaleIns++
	c.evictFEHost(addr, n, false)
}

// evictFEHost removes a node from every FE pool it participates in.
// immediate skips the grace period (failover).
func (c *Controller) evictFEHost(addr packet.IPv4, n *nodeState, immediate bool) {
	vnics := make([]uint32, 0, len(n.fronted))
	for id := range n.fronted {
		vnics = append(vnics, id)
	}
	sort.Slice(vnics, func(i, j int) bool { return vnics[i] < vnics[j] })
	for _, vnic := range vnics {
		v, ok := c.vnics[vnic]
		if !ok {
			delete(n.fronted, vnic)
			continue
		}
		c.removeFromPool(v, addr, !immediate)
		// Below the floor: add a replacement (§4.4); no candidates
		// flags the pool degraded for the repair loop.
		if v.offloaded && len(v.fes) < c.floorOf(v) {
			c.scaleOutOpts(v, c.floorOf(v)-len(v.fes), true)
		}
	}
}

// --- Failover ---------------------------------------------------------

// NodeDown is invoked by the health monitor when an FE host stops
// answering probes (§4.4). In-flight transactions targeting the node
// are failed so they never commit to it.
func (c *Controller) NodeDown(addr packet.IPv4) {
	if c.down {
		c.bufferedEvents = append(c.bufferedEvents, monEvent{kind: evNodeDown, a: addr})
		return
	}
	n, ok := c.nodes[addr]
	if !ok || n.down {
		return
	}
	n.down = true
	c.journalNode(addr, true)
	c.Stats.Failovers++
	c.statMu.Lock()
	c.failoverAt[addr] = c.loop.Now()
	c.statMu.Unlock()
	c.ob.Event(c.loop.Now(), "node-down", addr, 0, "fronted=%d", len(n.fronted))
	c.evictFEHost(addr, n, true)
	for _, vnic := range c.sortedVNICs() {
		c.failTxnTarget(c.vnics[vnic], addr)
	}
}

// FailoverTime reports when the controller last processed a crash
// declaration for addr (the rebalance away from it starts then). ok
// is false if addr never failed over.
func (c *Controller) FailoverTime(addr packet.IPv4) (sim.Time, bool) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	t, ok := c.failoverAt[addr]
	return t, ok
}

// LastRebalance reports the most recent time any vNIC's FE pool
// changed (eviction, scale-out completion, or link failover).
func (c *Controller) LastRebalance() sim.Time {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.lastRebalance
}

// noteRebalance stamps lastRebalance under statMu (readers may be
// off-goroutine).
func (c *Controller) noteRebalance() {
	c.statMu.Lock()
	c.lastRebalance = c.loop.Now()
	c.statMu.Unlock()
}

// LinkDown handles a BE-reported FE connectivity failure (§C.1):
// the FE itself may be healthy (the central monitor still sees it),
// but this BE cannot reach it, so it is removed from the pools of
// vNICs homed at `home` only, with replenishment to the floor. An
// in-flight prepare targeting the FE fails that target, so the
// transaction cannot commit to an FE its BE already cannot reach.
func (c *Controller) LinkDown(home, fe packet.IPv4) {
	if c.down {
		c.bufferedEvents = append(c.bufferedEvents, monEvent{kind: evLinkDown, a: home, b: fe})
		return
	}
	if c.badLinks[home] == nil {
		c.badLinks[home] = make(map[packet.IPv4]sim.Time)
	}
	c.badLinks[home][fe] = c.loop.Now()
	c.ob.Event(c.loop.Now(), "link-down", fe, 0, "home=%v", home)
	for _, vnic := range c.sortedVNICs() {
		v := c.vnics[vnic]
		if v.Home != home {
			continue
		}
		c.failTxnTarget(v, fe)
		if !v.offloaded {
			continue
		}
		// Graceful: the FE is alive (only this BE's link to it is bad),
		// and other senders may still be steered there until the
		// gateway shrink propagates — tear down after LearnInterval.
		if !c.removeFromPool(v, fe, true) {
			continue
		}
		if len(v.fes) < c.floorOf(v) {
			c.scaleOutOpts(v, c.floorOf(v)-len(v.fes), false)
		}
	}
}

// NodeUp marks a node healthy again (after repair) and reconciles:
// pools homed there re-push their config, unknown-BE aborts resolve,
// and pending FE removals on the node are retried.
func (c *Controller) NodeUp(addr packet.IPv4) {
	if c.down {
		c.bufferedEvents = append(c.bufferedEvents, monEvent{kind: evNodeUp, a: addr})
		return
	}
	n, ok := c.nodes[addr]
	if !ok {
		return
	}
	n.down = false
	c.journalNode(addr, false)
	c.ob.Event(c.loop.Now(), "node-up", addr, 0, "")
	for _, vnic := range c.sortedVNICs() {
		v := c.vnics[vnic]
		if v.Home != addr {
			continue
		}
		if len(v.staleFEs) > 0 && v.txn == nil {
			c.reconcileStale(v)
		}
		if v.offloaded && v.txn == nil && !v.inProgress {
			// The revived BE may hold arbitrarily stale FE config;
			// re-push the committed state at a fresh epoch.
			c.pushConfig(v)
		}
	}
	c.retryPendingRemovals(addr, n)
}

// --- Fallback ----------------------------------------------------------

// checkFallbacks returns offloaded vNICs to local processing when the
// home vSwitch could absorb them below the safe level (§4.2.2).
func (c *Controller) checkFallbacks() {
	for _, vnic := range c.sortedVNICs() {
		v := c.vnics[vnic]
		if !v.offloaded || v.inProgress || v.txn != nil {
			continue
		}
		hn, ok := c.nodes[v.Home]
		if !ok || hn.down {
			continue
		}
		// Estimate what the vNIC consumes remotely.
		extra := 0.0
		for _, fa := range v.fes {
			fn, ok := c.nodes[fa]
			if !ok || len(fn.fronted) == 0 {
				continue
			}
			extra += fn.cpuUtil * fn.remoteShare / float64(len(fn.fronted))
		}
		if hn.cpuUtil+extra < c.cfg.SafeLevel && hn.memUtil < c.cfg.SafeLevel {
			c.startFallback(v)
		}
	}
}

// ForceFallback triggers fallback for one vNIC regardless of load.
func (c *Controller) ForceFallback(vnic uint32) error {
	v, ok := c.vnics[vnic]
	if !ok {
		return fmt.Errorf("controller: unknown vNIC %d", vnic)
	}
	if !v.offloaded || v.inProgress || v.txn != nil {
		return nil
	}
	c.startFallback(v)
	return nil
}

// startFallback runs the reverse two-stage workflow (§4.2.2) as a
// transaction: an acked FallbackStart reinstalls the rule tables at
// the BE, then the gateway flips home. A failed BE push aborts with
// the FE pool untouched (the vNIC simply stays offloaded, retriable);
// a failed gateway push commits dirty — the BE serves locally while
// the FEs keep their tables, and the repair loop re-pushes the
// gateway before the old FEs are torn down.
func (c *Controller) startFallback(v *vnicState) {
	if _, ok := c.nodes[v.Home]; !ok {
		return
	}
	if v.txn != nil || v.inProgress {
		return
	}
	v.inProgress = true
	v.epoch++
	tx := &txn{kind: txnFallback, epoch: v.epoch, t0: c.loop.Now()}
	v.txn = tx
	c.journalIntent(v, tx)
	c.spanBegin("fallback", v.VNIC, tx.epoch)
	c.call(v.Home, &ctrlrpc.Request{
		Op: ctrlrpc.OpFallbackStart, VNIC: v.VNIC, Epoch: tx.epoch,
		Rules: v.MakeRules(), ApplyDelay: c.pushDelay(),
	}, func(err error) {
		if err != nil {
			// Satellite fix: a BE that cannot take its tables back
			// (e.g. memory pressure) aborts the fallback cleanly; the
			// FE pool still serves and the periodic check retries.
			v.txn = nil
			v.inProgress = false
			c.Stats.Aborts++
			c.journalResolve(v.VNIC, tx.epoch, false, nil)
			c.spanEnd("fallback", v.VNIC, tx.epoch, "aborted")
			c.ob.Event(c.loop.Now(), "txn-abort", v.Home, v.VNIC, "kind=fallback epoch=%d", tx.epoch)
			return
		}
		c.call(c.gwAgent.Addr(), &ctrlrpc.Request{
			Op: ctrlrpc.OpGatewaySet, VNIC: v.VNIC, Epoch: tx.epoch, FEs: []packet.IPv4{v.Home},
		}, func(gerr error) {
			v.offloaded = false
			v.txn = nil
			c.Stats.Fallbacks++
			outcome := "committed"
			if gerr != nil {
				outcome = "committed-dirty"
			}
			c.spanEnd("fallback", v.VNIC, tx.epoch, outcome)
			c.ob.Event(c.loop.Now(), "txn-commit", v.Home, v.VNIC, "kind=fallback epoch=%d dirty=%v", tx.epoch, gerr != nil)
			c.journalResolve(v.VNIC, tx.epoch, true, nil)
			if gerr != nil {
				// Gateway state unknown: keep the FEs alive until the
				// repair loop lands a fresh push, then clean up.
				v.dirty = true
				v.inProgress = false
				c.journalPlacement(v)
				return
			}
			fes := append([]packet.IPv4(nil), v.fes...)
			v.fes = nil
			c.journalPlacement(v)
			c.schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
				c.teardownFallbackFEs(v, fes)
				v.inProgress = false
			})
		})
	})
}

// teardownFallbackFEs finishes a fallback: the BE releases its FE
// config and BE data, and the old FE instances are removed.
func (c *Controller) teardownFallbackFEs(v *vnicState, fes []packet.IPv4) {
	if hn, ok := c.nodes[v.Home]; ok && !hn.down {
		c.call(v.Home, &ctrlrpc.Request{
			Op: ctrlrpc.OpFallbackFinalize, VNIC: v.VNIC, Epoch: v.epoch,
		}, nil)
	}
	for _, fa := range fes {
		if n, ok := c.nodes[fa]; ok {
			delete(n.fronted, v.VNIC)
		}
		c.sendRemoveFE(fa, v.VNIC, v.epoch)
	}
}
