// Package controller implements Nezha's control plane (§4): periodic
// utilization monitoring, seamless vNIC offload and fallback through
// the dual-running → final stage workflow, FE selection (same-ToR
// idle vSwitches with similar attributes), remote-pool scale-out and
// scale-in per the Fig 8 thresholds, and failover on FE crashes
// reported by the health monitor.
package controller

import (
	"errors"
	"fmt"
	"sort"

	"nezha/internal/fabric"
	"nezha/internal/metrics"
	"nezha/internal/nic"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
)

// Config holds the control-plane policy knobs, defaulting to the
// paper's production values.
type Config struct {
	// OffloadThreshold triggers remote offloading of local vNICs
	// (70%, Fig 8).
	OffloadThreshold float64
	// ScaleThreshold triggers scale-out/in of the FE pool (40%).
	ScaleThreshold float64
	// SafeLevel is the utilization offloading aims to get under.
	SafeLevel float64
	// IdleBar is the maximum utilization for an FE candidate.
	IdleBar float64
	// InitialFEs is the starting FE count (4, Appendix B.2).
	InitialFEs int
	// MinFEs is the floor maintained through failover (4, §4.4).
	MinFEs int
	// ReportInterval is how often vSwitches report utilization.
	ReportInterval sim.Time
	// ConfigPushMu/Sigma parameterize the lognormal per-FE config
	// push delay; completion times (Table 4) derive from the slowest
	// push plus the learning interval.
	ConfigPushMu    float64
	ConfigPushSigma float64
	// RTTAllowance pads the dual-running stage beyond the learning
	// interval before deleting BE tables ("200ms + RTT", §4.2.1).
	RTTAllowance sim.Time
	// FallbackCheckInterval paces fallback evaluation; 0 disables
	// automatic fallback.
	FallbackCheckInterval sim.Time
	// ScaleCooldown is the minimum spacing between scale-outs of one
	// vNIC's pool, covering config pushes and the learning interval
	// so a single pressure episode scales once (Fig 11: 4 → 8).
	ScaleCooldown sim.Time
	// BadLinkTTL is how long a BE-FE pair reported unreachable by the
	// mutual ping (§C.1) is kept out of FE selection for that BE —
	// without it, replenishment happily re-picks the partitioned FE.
	BadLinkTTL sim.Time
}

// DefaultConfig returns the production-calibrated policy.
func DefaultConfig() Config {
	return Config{
		OffloadThreshold:      0.70,
		ScaleThreshold:        0.40,
		SafeLevel:             0.40,
		IdleBar:               0.30,
		InitialFEs:            4,
		MinFEs:                4,
		ReportInterval:        500 * sim.Millisecond,
		ConfigPushMu:          -0.54, // lognormal: median ~0.58 s
		ConfigPushSigma:       0.40,
		RTTAllowance:          5 * sim.Millisecond,
		FallbackCheckInterval: 10 * sim.Second,
		ScaleCooldown:         3 * sim.Second,
		BadLinkTTL:            60 * sim.Second,
	}
}

// VNICInfo describes a manageable vNIC to the controller.
type VNICInfo struct {
	VNIC uint32
	// Home is the server hosting the vNIC's VM (its BE).
	Home packet.IPv4
	// MakeRules builds a fresh copy of the vNIC's rule tables, used
	// to configure FE instances and fallback.
	MakeRules func() *tables.RuleSet
	// Decap marks stateful decapsulation (§5.2).
	Decap bool
}

type nodeState struct {
	vs    *vswitch.VSwitch
	meter *nic.UtilMeter

	lastLocal, lastRemote uint64
	cpuUtil               float64
	memUtil               float64
	remoteShare           float64

	fronted map[uint32]bool // vNICs this node serves as FE
	down    bool
}

type vnicState struct {
	VNICInfo
	offloaded  bool
	inProgress bool
	fes        []packet.IPv4
	memTrigger bool     // offload was triggered by memory, not CPU
	lastScale  sim.Time // last scale-out, for the cooldown
	scaling    bool     // a scale-out is in flight
}

// Events counts control-plane actions for the experiments.
type Events struct {
	Offloads  uint64
	Fallbacks uint64
	ScaleOuts uint64
	ScaleIns  uint64
	Failovers uint64
	FEsAdded  uint64
}

// Controller is the centralized Nezha control plane.
type Controller struct {
	loop *sim.Loop
	gw   *fabric.Gateway
	rng  *sim.Rand
	cfg  Config

	nodes map[packet.IPv4]*nodeState
	vnics map[uint32]*vnicState
	// badLinks[home][fe] records when the BE at home last reported fe
	// unreachable (§C.1).
	badLinks map[packet.IPv4]map[packet.IPv4]sim.Time
	// failoverAt records when NodeDown last ran for an address;
	// lastRebalance is the most recent time any vNIC's FE pool
	// changed. Both feed the chaos failover-bound invariant.
	failoverAt    map[packet.IPv4]sim.Time
	lastRebalance sim.Time

	ticker *sim.Ticker

	// OffloadCompletion records, per offload, the time from trigger
	// until all traffic flows through the FEs (Table 4).
	OffloadCompletion *metrics.Histogram
	Stats             Events
}

// New builds a controller.
func New(loop *sim.Loop, gw *fabric.Gateway, cfg Config) *Controller {
	if cfg.InitialFEs == 0 {
		cfg = DefaultConfig()
	}
	return &Controller{
		loop:              loop,
		gw:                gw,
		rng:               sim.NewRand(int64(loop.Rand().Uint64())),
		cfg:               cfg,
		nodes:             make(map[packet.IPv4]*nodeState),
		vnics:             make(map[uint32]*vnicState),
		badLinks:          make(map[packet.IPv4]map[packet.IPv4]sim.Time),
		failoverAt:        make(map[packet.IPv4]sim.Time),
		OffloadCompletion: metrics.NewHistogram("offload-completion-ms"),
	}
}

// RegisterNode adds a vSwitch to the managed fleet.
func (c *Controller) RegisterNode(vs *vswitch.VSwitch) {
	c.nodes[vs.Addr()] = &nodeState{
		vs:      vs,
		meter:   nic.NewUtilMeter(vs.CPU()),
		fronted: make(map[uint32]bool),
	}
}

// RegisterVNIC makes a vNIC manageable (it must already be installed
// at its home vSwitch and present in the gateway).
func (c *Controller) RegisterVNIC(info VNICInfo) {
	c.vnics[info.VNIC] = &vnicState{VNICInfo: info}
}

// Start begins the periodic monitoring/decision loop.
func (c *Controller) Start() {
	c.ticker = c.loop.Every(c.cfg.ReportInterval, c.tick)
	if c.cfg.FallbackCheckInterval > 0 {
		c.loop.Every(c.cfg.FallbackCheckInterval, c.checkFallbacks)
	}
}

// Stop halts the decision loop.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Offloaded reports whether the controller considers vnic offloaded.
func (c *Controller) Offloaded(vnic uint32) bool {
	v, ok := c.vnics[vnic]
	return ok && v.offloaded
}

// FEsOf returns the FE addresses serving an offloaded vNIC.
func (c *Controller) FEsOf(vnic uint32) []packet.IPv4 {
	if v, ok := c.vnics[vnic]; ok {
		return append([]packet.IPv4(nil), v.fes...)
	}
	return nil
}

// NodeUtil returns the last sampled CPU utilization for a node
// (for experiments).
func (c *Controller) NodeUtil(addr packet.IPv4) float64 {
	if n, ok := c.nodes[addr]; ok {
		return n.cpuUtil
	}
	return 0
}

// tick samples every node and applies the Fig 8 decision tree.
func (c *Controller) tick() {
	for _, n := range c.nodes {
		if n.down {
			continue
		}
		n.cpuUtil = n.meter.Sample()
		n.memUtil = n.vs.MemUtilization()
		local, remote := n.vs.CyclesLocal(), n.vs.CyclesRemote()
		dl, dr := local-n.lastLocal, remote-n.lastRemote
		n.lastLocal, n.lastRemote = local, remote
		if dl+dr > 0 {
			n.remoteShare = float64(dr) / float64(dl+dr)
		} else {
			n.remoteShare = 0
		}
	}
	for addr, n := range c.nodes {
		if n.down {
			continue
		}
		util := n.cpuUtil
		if n.memUtil > util {
			util = n.memUtil
		}
		if util <= c.cfg.ScaleThreshold {
			continue
		}
		if n.remoteShare > 0.5 && len(n.fronted) > 0 {
			// Hot because of hosted-FE work: scale out the pools.
			c.scaleOutFrom(addr, n)
			continue
		}
		// Hot because of local traffic.
		if len(n.fronted) > 0 {
			c.scaleIn(addr, n)
		}
		if util > c.cfg.OffloadThreshold {
			c.offloadFrom(addr, n)
		}
	}
}

// --- Offload ---------------------------------------------------------

// ErrNoIdleNodes reports that FE selection found no candidates.
var ErrNoIdleNodes = errors.New("controller: no idle vSwitches available as FEs")

// offloadFrom offloads vNICs from a hot node, in descending order of
// the triggering resource, until the projection falls to SafeLevel.
func (c *Controller) offloadFrom(addr packet.IPv4, n *nodeState) {
	memTriggered := n.memUtil > c.cfg.OffloadThreshold && n.memUtil >= n.cpuUtil
	loads := n.vs.VNICLoads()
	if memTriggered {
		sort.Slice(loads, func(i, j int) bool { return loads[i].RuleBytes > loads[j].RuleBytes })
	} else {
		sort.Slice(loads, func(i, j int) bool { return loads[i].Cycles > loads[j].Cycles })
	}
	util := n.cpuUtil
	if memTriggered {
		util = n.memUtil
	}
	totalCycles := uint64(0)
	for _, l := range loads {
		totalCycles += l.Cycles
	}
	for _, l := range loads {
		if util <= c.cfg.SafeLevel {
			break
		}
		v, ok := c.vnics[l.VNIC]
		if !ok || v.offloaded || v.inProgress || v.Home != addr {
			continue
		}
		if err := c.startOffload(v, nil); err != nil {
			continue
		}
		v.memTrigger = memTriggered
		// Project the relief: CPU relief ∝ the vNIC's cycle share;
		// memory relief ∝ its rule bytes.
		if memTriggered {
			util -= float64(l.RuleBytes) / float64(1<<30)
		} else if totalCycles > 0 {
			util -= n.cpuUtil * float64(l.Cycles) / float64(totalCycles) * 0.85
		}
	}
}

// ForceOffload triggers the offload workflow for one vNIC regardless
// of thresholds (used by experiments and operators).
func (c *Controller) ForceOffload(vnic uint32) error {
	v, ok := c.vnics[vnic]
	if !ok {
		return fmt.Errorf("controller: unknown vNIC %d", vnic)
	}
	if v.offloaded || v.inProgress {
		return nil
	}
	return c.startOffload(v, nil)
}

// OffloadTo offloads a vNIC to an operator-chosen FE set — the §7.2
// capabilities: steering a vNIC onto upgraded vSwitches to use a new
// feature, or onto bug-free (older) vSwitches for cost-effective
// fault recovery, without migrating the VM.
func (c *Controller) OffloadTo(vnic uint32, targets []packet.IPv4) error {
	v, ok := c.vnics[vnic]
	if !ok {
		return fmt.Errorf("controller: unknown vNIC %d", vnic)
	}
	if v.offloaded || v.inProgress {
		return fmt.Errorf("controller: vNIC %d already offloaded or in progress", vnic)
	}
	if len(targets) == 0 {
		return fmt.Errorf("controller: empty target set")
	}
	for _, a := range targets {
		n, ok := c.nodes[a]
		if !ok || n.down {
			return fmt.Errorf("controller: target %v unavailable", a)
		}
		if a == v.Home {
			return fmt.Errorf("controller: home cannot front itself")
		}
	}
	return c.startOffload(v, targets)
}

func (c *Controller) pushDelay() sim.Time {
	s := c.rng.LogNormal(c.cfg.ConfigPushMu, c.cfg.ConfigPushSigma)
	return sim.Time(s * float64(sim.Second))
}

// selectFEs picks count idle vSwitches, preferring the BE's ToR and
// low, similar utilization (§4.2.1, Appendix B.1).
func (c *Controller) selectFEs(home packet.IPv4, count int, exclude map[packet.IPv4]bool) []packet.IPv4 {
	homeToR := -1
	if hn, ok := c.nodes[home]; ok {
		homeToR = hn.vs.ToR()
	}
	type cand struct {
		addr  packet.IPv4
		tor   int
		util  float64
		vnics int
	}
	bad := c.badLinks[home]
	var cands []cand
	for addr, n := range c.nodes {
		if addr == home || n.down || exclude[addr] {
			continue
		}
		if when, isBad := bad[addr]; isBad && c.loop.Now()-when < c.cfg.BadLinkTTL {
			continue
		}
		util := n.cpuUtil
		if n.memUtil > util {
			util = n.memUtil
		}
		if util > c.cfg.IdleBar {
			continue
		}
		cands = append(cands, cand{addr, n.vs.ToR(), util, n.vs.NumVNICs()})
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := cands[i].tor == homeToR, cands[j].tor == homeToR
		if si != sj {
			return si // same-ToR first
		}
		// Prefer truly idle machines: fewer resident vNICs means less
		// local traffic to collide with later.
		if cands[i].vnics != cands[j].vnics {
			return cands[i].vnics < cands[j].vnics
		}
		if cands[i].util != cands[j].util {
			return cands[i].util < cands[j].util
		}
		return cands[i].addr < cands[j].addr
	})
	if len(cands) > count {
		cands = cands[:count]
	}
	out := make([]packet.IPv4, len(cands))
	for i, cd := range cands {
		out[i] = cd.addr
	}
	return out
}

// startOffload runs the §4.2.1 two-stage workflow asynchronously.
// targets, when non-nil, bypasses FE selection (operator-directed
// redirection, §7.2).
func (c *Controller) startOffload(v *vnicState, targets []packet.IPv4) error {
	home, ok := c.nodes[v.Home]
	if !ok {
		return fmt.Errorf("controller: vNIC %d home %v not registered", v.VNIC, v.Home)
	}
	feAddrs := targets
	if feAddrs == nil {
		feAddrs = c.selectFEs(v.Home, c.cfg.InitialFEs, nil)
	}
	if len(feAddrs) == 0 {
		return ErrNoIdleNodes
	}
	v.inProgress = true
	t0 := c.loop.Now()

	// Dual-running stage: 1) configure rule tables on all FEs,
	// 2) configure BE/FE locations, 3) update the gateway.
	var maxPush sim.Time
	for _, fa := range feAddrs {
		fa := fa
		d := c.pushDelay()
		if d > maxPush {
			maxPush = d
		}
		c.loop.Schedule(d, func() {
			fn, ok := c.nodes[fa]
			if !ok || fn.down {
				return
			}
			if err := fn.vs.InstallFE(v.MakeRules(), v.Home, v.Decap); err != nil {
				return
			}
			fn.fronted[v.VNIC] = true
		})
	}
	c.loop.Schedule(maxPush, func() {
		if err := home.vs.OffloadStart(v.VNIC, feAddrs); err != nil {
			v.inProgress = false
			return
		}
		c.gw.Set(v.VNIC, feAddrs...)
		// All traffic flows via FEs once every learner refreshes.
		completion := c.loop.Now() + fabric.LearnInterval - t0
		c.OffloadCompletion.Observe(completion.Millis())
		// Final stage after the learning interval + RTT.
		c.loop.Schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
			_ = home.vs.OffloadFinalize(v.VNIC)
			v.offloaded = true
			v.inProgress = false
			v.fes = feAddrs
			c.Stats.Offloads++
			c.Stats.FEsAdded += uint64(len(feAddrs))
		})
	})
	return nil
}

// --- Scale-out / scale-in ---------------------------------------------

// scaleOutFrom relieves an FE-hosting node by doubling the FE pools
// of the vNICs it fronts (Fig 11 scales 4 → 8).
func (c *Controller) scaleOutFrom(addr packet.IPv4, n *nodeState) {
	for vnic := range n.fronted {
		v, ok := c.vnics[vnic]
		if !ok || !v.offloaded {
			continue
		}
		c.scaleOut(v, len(v.fes))
	}
}

// scaleOut adds count FEs to a vNIC's pool (§4.3). A cooldown keeps
// one pressure episode from scaling the same pool repeatedly while
// the configuration is still propagating.
func (c *Controller) scaleOut(v *vnicState, count int) {
	if count < 1 {
		count = 1
	}
	now := c.loop.Now()
	if v.scaling || (v.lastScale > 0 && now-v.lastScale < c.cfg.ScaleCooldown) {
		return
	}
	exclude := map[packet.IPv4]bool{}
	for _, fa := range v.fes {
		exclude[fa] = true
	}
	newFEs := c.selectFEs(v.Home, count, exclude)
	if len(newFEs) == 0 {
		return
	}
	v.scaling = true
	v.lastScale = now
	var maxPush sim.Time
	for _, fa := range newFEs {
		fa := fa
		d := c.pushDelay()
		if d > maxPush {
			maxPush = d
		}
		c.loop.Schedule(d, func() {
			fn, ok := c.nodes[fa]
			if !ok || fn.down {
				return
			}
			if err := fn.vs.InstallFE(v.MakeRules(), v.Home, v.Decap); err != nil {
				return
			}
			fn.fronted[v.VNIC] = true
		})
	}
	c.loop.Schedule(maxPush, func() {
		v.scaling = false
		added := 0
		for _, fa := range newFEs {
			dup := false
			for _, have := range v.fes {
				if have == fa {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			v.fes = append(v.fes, fa)
			c.gw.Add(v.VNIC, fa)
			added++
		}
		if added == 0 {
			return
		}
		if hn, ok := c.nodes[v.Home]; ok {
			_ = hn.vs.SetFEs(v.VNIC, v.fes)
		}
		c.lastRebalance = c.loop.Now()
		c.Stats.ScaleOuts++
		c.Stats.FEsAdded += uint64(added)
	})
}

// scaleIn removes every FE hosted on a node that now needs its
// resources for local traffic (§4.3). The FE's rule tables are
// retained for the learning interval + RTT before deletion.
func (c *Controller) scaleIn(addr packet.IPv4, n *nodeState) {
	if len(n.fronted) == 0 {
		return
	}
	c.Stats.ScaleIns++
	c.evictFEHost(addr, n, false)
}

// evictFEHost removes a node from every FE pool it participates in.
// immediate skips the grace period (failover).
func (c *Controller) evictFEHost(addr packet.IPv4, n *nodeState, immediate bool) {
	if len(n.fronted) > 0 {
		c.lastRebalance = c.loop.Now()
	}
	for vnic := range n.fronted {
		v, ok := c.vnics[vnic]
		if !ok {
			continue
		}
		// Remove from BE config and gateway.
		kept := v.fes[:0]
		for _, fa := range v.fes {
			if fa != addr {
				kept = append(kept, fa)
			}
		}
		v.fes = kept
		if hn, ok := c.nodes[v.Home]; ok && !hn.down {
			_ = hn.vs.SetFEs(vnic, v.fes)
		}
		c.gw.Remove(vnic, addr)
		// Below the floor: add a replacement (§4.4).
		if v.offloaded && len(v.fes) < c.cfg.MinFEs {
			c.scaleOut(v, c.cfg.MinFEs-len(v.fes))
		}
	}
	fronted := n.fronted
	n.fronted = make(map[uint32]bool)
	cleanup := func() {
		for vnic := range fronted {
			n.vs.RemoveFE(vnic)
		}
	}
	if immediate {
		cleanup()
		return
	}
	c.loop.Schedule(fabric.LearnInterval+c.cfg.RTTAllowance, cleanup)
}

// --- Failover ---------------------------------------------------------

// NodeDown is invoked by the health monitor when an FE host stops
// answering probes (§4.4).
func (c *Controller) NodeDown(addr packet.IPv4) {
	n, ok := c.nodes[addr]
	if !ok || n.down {
		return
	}
	n.down = true
	c.Stats.Failovers++
	c.failoverAt[addr] = c.loop.Now()
	c.evictFEHost(addr, n, true)
}

// FailoverTime reports when the controller last processed a crash
// declaration for addr (the rebalance away from it starts then). ok
// is false if addr never failed over.
func (c *Controller) FailoverTime(addr packet.IPv4) (sim.Time, bool) {
	t, ok := c.failoverAt[addr]
	return t, ok
}

// LastRebalance reports the most recent time any vNIC's FE pool
// changed (eviction, scale-out completion, or link failover).
func (c *Controller) LastRebalance() sim.Time { return c.lastRebalance }

// LinkDown handles a BE-reported FE connectivity failure (§C.1):
// the FE itself may be healthy (the central monitor still sees it),
// but this BE cannot reach it, so it is removed from the pools of
// vNICs homed at `home` only, with replenishment to the floor.
func (c *Controller) LinkDown(home, fe packet.IPv4) {
	if c.badLinks[home] == nil {
		c.badLinks[home] = make(map[packet.IPv4]sim.Time)
	}
	c.badLinks[home][fe] = c.loop.Now()
	for _, v := range c.vnics {
		if v.Home != home || !v.offloaded {
			continue
		}
		had := false
		kept := v.fes[:0]
		for _, a := range v.fes {
			if a == fe {
				had = true
				continue
			}
			kept = append(kept, a)
		}
		if !had {
			continue
		}
		v.fes = kept
		c.lastRebalance = c.loop.Now()
		if hn, ok := c.nodes[v.Home]; ok && !hn.down {
			_ = hn.vs.SetFEs(v.VNIC, v.fes)
		}
		c.gw.Remove(v.VNIC, fe)
		if fn, ok := c.nodes[fe]; ok {
			delete(fn.fronted, v.VNIC)
			fn.vs.RemoveFE(v.VNIC)
		}
		if len(v.fes) < c.cfg.MinFEs {
			c.scaleOut(v, c.cfg.MinFEs-len(v.fes))
		}
	}
}

// NodeUp marks a node healthy again (after repair).
func (c *Controller) NodeUp(addr packet.IPv4) {
	if n, ok := c.nodes[addr]; ok {
		n.down = false
	}
}

// --- Fallback ----------------------------------------------------------

// checkFallbacks returns offloaded vNICs to local processing when the
// home vSwitch could absorb them below the safe level (§4.2.2).
func (c *Controller) checkFallbacks() {
	for _, v := range c.vnics {
		if !v.offloaded || v.inProgress {
			continue
		}
		hn, ok := c.nodes[v.Home]
		if !ok || hn.down {
			continue
		}
		// Estimate what the vNIC consumes remotely.
		extra := 0.0
		for _, fa := range v.fes {
			fn, ok := c.nodes[fa]
			if !ok || len(fn.fronted) == 0 {
				continue
			}
			extra += fn.cpuUtil * fn.remoteShare / float64(len(fn.fronted))
		}
		if hn.cpuUtil+extra < c.cfg.SafeLevel && hn.memUtil < c.cfg.SafeLevel {
			c.startFallback(v)
		}
	}
}

// ForceFallback triggers fallback for one vNIC regardless of load.
func (c *Controller) ForceFallback(vnic uint32) error {
	v, ok := c.vnics[vnic]
	if !ok {
		return fmt.Errorf("controller: unknown vNIC %d", vnic)
	}
	if !v.offloaded || v.inProgress {
		return nil
	}
	c.startFallback(v)
	return nil
}

// startFallback runs the reverse two-stage workflow (§4.2.2).
func (c *Controller) startFallback(v *vnicState) {
	hn, ok := c.nodes[v.Home]
	if !ok {
		return
	}
	v.inProgress = true
	d := c.pushDelay()
	c.loop.Schedule(d, func() {
		if err := hn.vs.FallbackStart(v.VNIC, v.MakeRules()); err != nil {
			v.inProgress = false
			return
		}
		// Gateway points back at the BE.
		c.gw.Set(v.VNIC, v.Home)
		c.loop.Schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
			_ = hn.vs.FallbackFinalize(v.VNIC)
			for _, fa := range v.fes {
				if fn, ok := c.nodes[fa]; ok {
					fn.vs.RemoveFE(v.VNIC)
					delete(fn.fronted, v.VNIC)
				}
			}
			v.fes = nil
			v.offloaded = false
			v.inProgress = false
			c.Stats.Fallbacks++
		})
	})
}
