package controller

import (
	"reflect"
	"testing"

	"nezha/internal/packet"
	"nezha/internal/prof"
	"nezha/internal/sim"
	"nezha/internal/tables"
)

// TestSuggestOffloadStableBetweenDrains pins the drain-generation
// cache: the profiler's accumulators are live, so an uncached ranking
// would shift under every call as traffic accrues. SuggestOffload must
// return the identical ranking until the next series drain, and only
// then fold in what accumulated since.
func TestSuggestOffloadStableBetweenDrains(t *testing.T) {
	r := newRig(t, 2, nil)
	pr := prof.New()
	pr.SetClock(r.loop.Now)
	for _, vs := range r.sw {
		vs.EnableProf(pr)
	}
	r.ctrl.EnableProf(pr)
	reader := prof.NewSeriesReader(pr)

	home := r.sw[0]
	const hotVNIC, coldVNIC = 100, 200
	for _, vnic := range []uint32{hotVNIC, coldVNIC} {
		if err := home.AddVNIC(tables.NewRuleSet(vnic, 1), false); err != nil {
			t.Fatal(err)
		}
		r.gw.Set(vnic, home.Addr())
		r.ctrl.RegisterVNIC(VNICInfo{VNIC: vnic, Home: home.Addr(), MakeRules: mkRules(vnic)})
	}

	flowID := 0
	send := func(vnic uint32, flows int) {
		for i := 0; i < flows; i++ {
			flowID++
			ft := packet.FiveTuple{
				SrcIP: ip(10, 9, 0, 1), DstIP: ip(10, 9, 0, 2),
				SrcPort: uint16(5000 + flowID), DstPort: 80, Proto: packet.ProtoTCP,
			}
			p := packet.New(uint64(vnic)<<32|uint64(flowID), 1, vnic, ft, packet.DirTX, packet.FlagSYN, 64)
			p.SentAt = int64(r.loop.Now())
			home.FromVM(p)
		}
	}

	send(hotVNIC, 40)
	send(coldVNIC, 3)
	r.loop.Run(100 * sim.Millisecond)
	reader.Read(r.loop.Now()) // drain: the ranking below is pinned to this snapshot

	first := r.ctrl.SuggestOffload(0)
	if len(first) < 2 || first[0].VNIC != hotVNIC {
		t.Fatalf("setup: hot vNIC not ranked first: %+v", first)
	}

	// Invert the skew WITHOUT draining: the cold vNIC now dwarfs the
	// hot one in the live accumulators, but the ranking must not move.
	send(coldVNIC, 300)
	r.loop.Run(r.loop.Now() + 100*sim.Millisecond)

	between := r.ctrl.SuggestOffload(0)
	if !reflect.DeepEqual(first, between) {
		t.Fatalf("ranking shifted between drains:\nfirst:   %+v\nbetween: %+v", first, between)
	}

	// After the next drain the accumulated inversion must show.
	reader.Read(r.loop.Now())
	after := r.ctrl.SuggestOffload(0)
	if len(after) < 2 || after[0].VNIC != coldVNIC {
		t.Fatalf("post-drain ranking did not fold in new traffic: %+v", after)
	}
	if reflect.DeepEqual(first, after) {
		t.Fatal("post-drain ranking identical to pre-drain — the cache never invalidated")
	}
}

// TestSuggestOffloadCacheAcrossReaderRebuild models recovery: the
// profiler (off-box telemetry) survives a controller crash, the
// SeriesReader does not. Rebuilding and priming a fresh reader must
// not perturb the cached ranking — Prime is not a drain — and the
// rebuilt reader's first Read must invalidate it like any other drain.
func TestSuggestOffloadCacheAcrossReaderRebuild(t *testing.T) {
	r := newRig(t, 2, nil)
	pr := prof.New()
	pr.SetClock(r.loop.Now)
	for _, vs := range r.sw {
		vs.EnableProf(pr)
	}
	r.ctrl.EnableProf(pr)
	reader := prof.NewSeriesReader(pr)

	home := r.sw[0]
	const hotVNIC, coldVNIC = 100, 200
	for _, vnic := range []uint32{hotVNIC, coldVNIC} {
		if err := home.AddVNIC(tables.NewRuleSet(vnic, 1), false); err != nil {
			t.Fatal(err)
		}
		r.gw.Set(vnic, home.Addr())
		r.ctrl.RegisterVNIC(VNICInfo{VNIC: vnic, Home: home.Addr(), MakeRules: mkRules(vnic)})
	}

	flowID := 0
	send := func(vnic uint32, flows int) {
		for i := 0; i < flows; i++ {
			flowID++
			ft := packet.FiveTuple{
				SrcIP: ip(10, 9, 0, 1), DstIP: ip(10, 9, 0, 2),
				SrcPort: uint16(5000 + flowID), DstPort: 80, Proto: packet.ProtoTCP,
			}
			p := packet.New(uint64(vnic)<<32|uint64(flowID), 1, vnic, ft, packet.DirTX, packet.FlagSYN, 64)
			p.SentAt = int64(r.loop.Now())
			home.FromVM(p)
		}
	}

	send(hotVNIC, 40)
	send(coldVNIC, 3)
	r.loop.Run(100 * sim.Millisecond)
	reader.Read(r.loop.Now())
	first := r.ctrl.SuggestOffload(0)
	if len(first) < 2 || first[0].VNIC != hotVNIC {
		t.Fatalf("setup: hot vNIC not ranked first: %+v", first)
	}

	// Crash boundary: the reader dies with the controller; recovery
	// builds and primes a replacement. The cached ranking must hold.
	rebuilt := prof.NewSeriesReader(pr)
	rebuilt.Prime(r.loop.Now())
	if got := r.ctrl.SuggestOffload(0); !reflect.DeepEqual(first, got) {
		t.Fatalf("priming a rebuilt reader shifted the ranking:\nbefore: %+v\nafter:  %+v", first, got)
	}

	// Invert the skew, then drain through the rebuilt reader: the
	// cache must invalidate and fold in the accumulated inversion.
	send(coldVNIC, 300)
	r.loop.Run(r.loop.Now() + 100*sim.Millisecond)
	rebuilt.Read(r.loop.Now())
	after := r.ctrl.SuggestOffload(0)
	if len(after) < 2 || after[0].VNIC != coldVNIC {
		t.Fatalf("rebuilt reader's drain did not invalidate the cache: %+v", after)
	}
}
