// Controller crash-recovery: the journaling hooks, the crash model,
// and the recovery path that rebuilds the control plane from
// snapshot+log and reconciles it against the live world.
//
// The crash model mirrors a real process death. Crash abandons every
// in-flight continuation (the transport drops its pending calls and
// discards acks, scheduled closures are generation-fenced), wipes the
// in-memory world, and leaves only the journal's Store — the disk —
// intact. Recover replays the journal, restarts the loops, drains the
// monitor declarations that arrived during the outage, and then
// settles every prepared-but-unresolved two-phase transaction by
// asking the gateway what actually happened: a gateway entry at (or
// past) the intent's epoch means the commit landed and the acked FE
// subset it holds is adopted and re-pushed; anything less means the
// flip never happened and the prepared installs are rolled back
// through the same unknown-BE abort path a live abort uses.
package controller

import (
	"errors"
	"sort"

	"nezha/internal/ctrlrpc"
	"nezha/internal/fabric"
	"nezha/internal/journal"
	"nezha/internal/packet"
	"nezha/internal/sim"
)

// monEvent is a monitor declaration buffered while the controller is
// down; Recover replays them in arrival order.
type monEvent struct {
	kind int
	a, b packet.IPv4
}

const (
	evNodeDown = iota
	evNodeUp
	evLinkDown
)

// --- Generation-fenced scheduling and RPC ----------------------------

// schedule wraps loop.Schedule with a crash fence: closures captured
// by a dead incarnation (or scheduled while down) never run against
// the recovered controller's state.
func (c *Controller) schedule(d sim.Time, fn func()) sim.EventRef {
	if c.down {
		return sim.EventRef{}
	}
	gen := c.gen
	return c.loop.Schedule(d, func() {
		if c.down || c.gen != gen {
			return
		}
		fn()
	})
}

// call is the fenced rpc.Call: no-ops while down, and the done
// callback is dropped if the controller crashed since the call left.
func (c *Controller) call(to packet.IPv4, req *ctrlrpc.Request, done func(error)) {
	if c.down {
		return
	}
	if done == nil {
		c.rpc.Call(to, req, nil)
		return
	}
	gen := c.gen
	c.rpc.Call(to, req, func(err error) {
		if c.down || c.gen != gen {
			return
		}
		done(err)
	})
}

// query is the fenced rpc.Query.
func (c *Controller) query(to packet.IPv4, req *ctrlrpc.Request, done func(*ctrlrpc.Reply, error)) {
	if c.down {
		return
	}
	gen := c.gen
	c.rpc.Query(to, req, func(rep *ctrlrpc.Reply, err error) {
		if c.down || c.gen != gen {
			return
		}
		done(rep, err)
	})
}

// --- Journaling hooks -------------------------------------------------

// AttachJournal wires the write-ahead log. Call it before Start; vNICs
// already registered are seeded so replay has a baseline even if no
// later mutation touches them. The controller registers a compactor so
// periodic snapshots keep the journal's footprint bounded.
func (c *Controller) AttachJournal(j *journal.Journal) {
	c.journal = j
	j.AddCompactor(c.exportState)
	for _, id := range c.sortedVNICs() {
		c.journalPlacement(c.vnics[id])
	}
}

// Journal returns the attached write-ahead log (nil if none).
func (c *Controller) Journal() *journal.Journal { return c.journal }

func (c *Controller) journalAppend(r journal.Record) {
	if c.journal == nil {
		return
	}
	// Errors are counted in the journal's stats; a sick disk must not
	// take the control plane down with it.
	_ = c.journal.Append(r)
}

func placementRecord(v *vnicState) journal.Record {
	return journal.Record{
		Kind: journal.KindPlacement, VNIC: v.VNIC, Epoch: v.epoch,
		Offloaded: v.offloaded, Pinned: v.pinned,
		FEs:     append([]packet.IPv4(nil), v.fes...),
		Stale:   append([]packet.IPv4(nil), v.staleFEs...),
		RetryAt: int64(v.retryAt), LastScale: int64(v.lastScale),
	}
}

func txnRecordKind(k txnKind) uint8 {
	switch k {
	case txnOffload:
		return journal.TxnOffload
	case txnScaleOut:
		return journal.TxnScaleOut
	default:
		return journal.TxnFallback
	}
}

func intentRecord(v *vnicState, tx *txn) journal.Record {
	return journal.Record{
		Kind: journal.KindIntent, VNIC: v.VNIC, Epoch: tx.epoch,
		Txn: txnRecordKind(tx.kind), Pinned: v.pinned,
		FEs: append([]packet.IPv4(nil), tx.targets...),
	}
}

func (c *Controller) journalPlacement(v *vnicState) {
	if c.journal == nil {
		return
	}
	c.journalAppend(placementRecord(v))
}

func (c *Controller) journalIntent(v *vnicState, tx *txn) {
	if c.journal == nil {
		return
	}
	c.journalAppend(intentRecord(v, tx))
}

func (c *Controller) journalResolve(vnic uint32, epoch uint64, committed bool, fes []packet.IPv4) {
	c.journalAppend(journal.Record{
		Kind: journal.KindResolve, VNIC: vnic, Epoch: epoch,
		Committed: committed, FEs: append([]packet.IPv4(nil), fes...),
	})
}

func (c *Controller) journalNode(addr packet.IPv4, down bool) {
	c.journalAppend(journal.Record{Kind: journal.KindNode, Node: addr, Down: down})
}

func (c *Controller) journalRemoval(node packet.IPv4, vnic uint32, epoch uint64, done bool) {
	c.journalAppend(journal.Record{Kind: journal.KindRemoval, Node: node, VNIC: vnic, Epoch: epoch, Done: done})
}

// clearRemoval drops a parked removal (the FE is a committed pool
// member again) and journals the closure.
func (c *Controller) clearRemoval(n *nodeState, addr packet.IPv4, vnic uint32) {
	if ep, ok := n.pendingRemoval[vnic]; ok {
		delete(n.pendingRemoval, vnic)
		c.journalRemoval(addr, vnic, ep, true)
	}
}

// exportState is the journal compactor: the minimal record set that
// replays to the controller's current durable state.
func (c *Controller) exportState() []journal.Record {
	var out []journal.Record
	for _, id := range c.sortedVNICs() {
		v := c.vnics[id]
		out = append(out, placementRecord(v))
		if tx := v.txn; tx != nil && !tx.resolved {
			out = append(out, intentRecord(v, tx))
		}
	}
	for _, addr := range c.sortedNodeAddrs() {
		n := c.nodes[addr]
		if n.down {
			out = append(out, journal.Record{Kind: journal.KindNode, Node: addr, Down: true})
		}
		ids := make([]uint32, 0, len(n.pendingRemoval))
		for id := range n.pendingRemoval {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			out = append(out, journal.Record{Kind: journal.KindRemoval, Node: addr, VNIC: id, Epoch: n.pendingRemoval[id]})
		}
	}
	return out
}

// --- Crash ------------------------------------------------------------

// Crash models the controller process dying: loops stop, the RPC
// transport abandons every in-flight call and drops arriving acks, and
// all in-memory state is forgotten. Telemetry objects (stats counters,
// histograms, obs) survive — they model off-box collection. The
// journal's Store is the disk; Recover rebuilds from it.
func (c *Controller) Crash() {
	if c.down {
		return
	}
	c.down = true
	c.gen++
	c.Stop()
	c.rpc.SetDown(true)
	c.ob.Event(c.loop.Now(), "ctrl-down", 0, 0, "gen=%d", c.gen)
	for id, v := range c.vnics {
		c.vnics[id] = &vnicState{VNICInfo: v.VNICInfo}
	}
	for _, n := range c.nodes {
		n.fronted = make(map[uint32]bool)
		n.pendingRemoval = make(map[uint32]uint64)
		n.down = false
		n.cpuUtil, n.memUtil, n.remoteShare = 0, 0, 0
		n.lastLocal, n.lastRemote = 0, 0
	}
	c.badLinks = make(map[packet.IPv4]map[packet.IPv4]sim.Time)
	c.bufferedEvents = nil
	c.recoverWait = 0
}

// ControllerUp reports process liveness; the policy loop backs its
// ticks off while this is false.
func (c *Controller) ControllerUp() bool { return !c.down }

// Recoveries counts completed Recover calls.
func (c *Controller) Recoveries() uint64 {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.recoveries
}

// LastRecovery reports the most recent recovery's start and end times.
// end is zero (and ok still true) while reconciliation is in flight.
func (c *Controller) LastRecovery() (start, end sim.Time, ok bool) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.recoverStart, c.recoveredAt, c.recoveries > 0
}

// DupSideEffects sums duplicate side-effect applications observed by
// every agent — journal replay must never re-run an op the dead
// incarnation already landed, so a chaos invariant pins this at zero.
func (c *Controller) DupSideEffects() uint64 {
	total := c.gwAgent.Stats.DupSideEffects
	for _, addr := range c.sortedNodeAddrs() {
		total += c.nodes[addr].agent.Stats.DupSideEffects
	}
	return total
}

// --- Recovery ---------------------------------------------------------

// RecoverOpts tunes Recover.
type RecoverOpts struct {
	// SkipReconcile replays the journal but skips the live-world
	// reconciliation, blindly rolling back every open intent instead of
	// asking the gateway whether it committed. This is the negative
	// control: a commit that landed at the gateway before the crash
	// gets its FE tables torn out from under live routing, which the
	// chaos no-blackhole invariant must catch.
	SkipReconcile bool
}

// openIntent is a prepared-but-unresolved transaction found at replay.
type openIntent struct {
	kind    txnKind
	epoch   uint64
	targets []packet.IPv4
	pinned  bool
}

// Recover rebuilds a crashed controller: replay the journal into fresh
// state, restart the loops, drain buffered monitor declarations, and
// reconcile every vNIC against the gateway and its home BE over acked
// RPCs. Committed-but-unjournaled flips are adopted and re-pushed at a
// fresh epoch; uncommitted prepares are rolled back. Recovery is
// complete (LastRecovery's end stamped) when every vNIC's chain has
// settled.
func (c *Controller) Recover(opts RecoverOpts) error {
	if !c.down {
		return errors.New("controller: Recover called on a live controller")
	}
	if c.journal == nil {
		return errors.New("controller: no journal attached")
	}
	now := c.loop.Now()
	c.statMu.Lock()
	c.recoveries++
	c.recoverStart = now
	c.recoveredAt = 0
	c.statMu.Unlock()
	recs, err := c.journal.Replay()
	if err != nil {
		return err
	}
	c.down = false
	c.rpc.SetDown(false)
	c.ob.Event(now, "ctrl-recover", 0, 0, "records=%d journal_bytes=%d", len(recs), c.journal.SizeBytes())
	open := c.applyReplay(recs)
	c.Start()
	buffered := c.bufferedEvents
	c.bufferedEvents = nil
	for _, ev := range buffered {
		switch ev.kind {
		case evNodeDown:
			c.NodeDown(ev.a)
		case evNodeUp:
			c.NodeUp(ev.a)
		case evLinkDown:
			c.LinkDown(ev.a, ev.b)
		}
	}
	if opts.SkipReconcile {
		for _, id := range c.sortedVNICs() {
			oi, ok := open[id]
			if !ok {
				continue
			}
			for _, fa := range oi.targets {
				c.rollbackFE(fa, id, oi.epoch)
			}
		}
		c.finishRecovery()
		return nil
	}
	for _, id := range c.sortedVNICs() {
		c.reconcileVNIC(c.vnics[id], open[id])
	}
	if c.recoverWait == 0 {
		c.finishRecovery()
	}
	return nil
}

// applyReplay folds journal records into the (freshly wiped) world and
// returns the per-vNIC open intents left unresolved at crash time.
func (c *Controller) applyReplay(recs []journal.Record) map[uint32]*openIntent {
	open := make(map[uint32]*openIntent)
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case journal.KindPlacement:
			v, ok := c.vnics[r.VNIC]
			if !ok {
				continue
			}
			v.offloaded = r.Offloaded
			v.pinned = r.Pinned
			v.fes = append([]packet.IPv4(nil), r.FEs...)
			v.staleFEs = append([]packet.IPv4(nil), r.Stale...)
			v.retryAt = sim.Time(r.RetryAt)
			v.lastScale = sim.Time(r.LastScale)
			if r.Epoch > v.epoch {
				v.epoch = r.Epoch
			}
		case journal.KindIntent:
			v, ok := c.vnics[r.VNIC]
			if !ok {
				continue
			}
			if r.Epoch > v.epoch {
				v.epoch = r.Epoch
			}
			kind := txnOffload
			switch r.Txn {
			case journal.TxnScaleOut:
				kind = txnScaleOut
			case journal.TxnFallback:
				kind = txnFallback
			}
			open[r.VNIC] = &openIntent{
				kind: kind, epoch: r.Epoch,
				targets: append([]packet.IPv4(nil), r.FEs...),
				pinned:  r.Pinned,
			}
		case journal.KindResolve:
			if oi, ok := open[r.VNIC]; ok && oi.epoch == r.Epoch {
				delete(open, r.VNIC)
			}
		case journal.KindNode:
			if n, ok := c.nodes[r.Node]; ok {
				n.down = r.Down
			}
		case journal.KindRemoval:
			n, ok := c.nodes[r.Node]
			if !ok {
				continue
			}
			if r.Done {
				if n.pendingRemoval[r.VNIC] <= r.Epoch {
					delete(n.pendingRemoval, r.VNIC)
				}
			} else if old, has := n.pendingRemoval[r.VNIC]; !has || r.Epoch > old {
				n.pendingRemoval[r.VNIC] = r.Epoch
			}
		}
		// KindPolicy records belong to the policy engine's Restore.
	}
	for _, id := range c.sortedVNICs() {
		v := c.vnics[id]
		v.degraded = false // recomputed by the repair loop
		if v.offloaded {
			for _, fa := range v.fes {
				if n, ok := c.nodes[fa]; ok {
					n.fronted[id] = true
				}
			}
		} else if len(v.fes) > 0 {
			// A fallback that committed dirty pre-crash: the gateway may
			// still steer at the old FEs (dirtiness is not journaled).
			// Force a home re-push before the deferred cleanup can tear
			// their tables down.
			v.dirty = true
		}
	}
	// Re-baseline the cycle counters so the first post-recovery tick
	// does not read the entire pre-crash history as one window.
	for _, addr := range c.sortedNodeAddrs() {
		n := c.nodes[addr]
		n.lastLocal, n.lastRemote = n.vs.CyclesLocal(), n.vs.CyclesRemote()
	}
	return open
}

// reconcileVNIC settles one vNIC against the live world: the gateway
// query resolves any open intent and folds the installed epoch, the
// home-BE query folds its epoch, and committed state is re-pushed at a
// fresh epoch so every endpoint converges on the recovered view.
func (c *Controller) reconcileVNIC(v *vnicState, oi *openIntent) {
	c.recoverWait++
	v.inProgress = true
	c.query(c.gwAgent.Addr(), &ctrlrpc.Request{Op: ctrlrpc.OpQueryGateway, VNIC: v.VNIC}, func(rep *ctrlrpc.Reply, err error) {
		keep := false
		if oi != nil {
			keep = c.resolveRecovered(v, oi, rep, err)
		} else if err == nil && rep != nil && rep.Epoch > v.epoch {
			v.epoch = rep.Epoch
		}
		hn, hok := c.nodes[v.Home]
		if !hok || hn.down {
			c.finishVNICRecovery(v, keep)
			return
		}
		c.query(v.Home, &ctrlrpc.Request{Op: ctrlrpc.OpQueryVNIC, VNIC: v.VNIC}, func(rep2 *ctrlrpc.Reply, err2 error) {
			if err2 == nil && rep2 != nil && rep2.Epoch > v.epoch {
				v.epoch = rep2.Epoch
			}
			c.finishVNICRecovery(v, keep)
		})
	})
}

// resolveRecovered completes or aborts one open intent using gateway
// evidence: an installed epoch at or past the intent's means the
// commit landed (the gateway's FE list is exactly the acked-good
// subset the dead incarnation committed). Returns whether the vNIC
// must stay inProgress (a deferred fallback teardown owns it).
func (c *Controller) resolveRecovered(v *vnicState, oi *openIntent, rep *ctrlrpc.Reply, err error) bool {
	committed := err == nil && rep != nil && rep.Epoch >= oi.epoch
	if rep != nil && rep.Epoch > v.epoch {
		v.epoch = rep.Epoch
	}
	c.ob.Event(c.loop.Now(), "recover-intent", v.Home, v.VNIC,
		"kind=%d epoch=%d committed=%v", oi.kind, oi.epoch, committed)
	switch oi.kind {
	case txnOffload, txnScaleOut:
		if committed {
			v.offloaded = true
			if oi.kind == txnOffload {
				v.pinned = oi.pinned
			}
			v.fes = append([]packet.IPv4(nil), rep.Addrs...)
			for _, fa := range v.fes {
				if n, ok := c.nodes[fa]; ok {
					n.fronted[v.VNIC] = true
					c.clearRemoval(n, fa, v.VNIC)
				}
			}
			if oi.kind == txnOffload {
				c.Stats.Offloads++
			} else {
				c.Stats.ScaleOuts++
			}
			c.noteRebalance()
			c.journalResolve(v.VNIC, oi.epoch, true, v.fes)
			c.journalPlacement(v)
			return false
		}
		c.Stats.Aborts++
		c.journalResolve(v.VNIC, oi.epoch, false, nil)
		if oi.kind == txnScaleOut {
			// Pool membership is unchanged; tear down targets that are
			// not already committed members.
			for _, fa := range oi.targets {
				member := false
				for _, have := range v.fes {
					if have == fa {
						member = true
						break
					}
				}
				if !member {
					c.rollbackFE(fa, v.VNIC, oi.epoch)
				}
			}
			return false
		}
		// Aborted offload: the BE may have applied OffloadStart before
		// the crash, so the installs go through the unknown-BE path —
		// parked as stale and torn down only after the BE acks an abort.
		v.retryAt = c.loop.Now() + c.cfg.OffloadRetryCooldown
		v.staleFEs = mergeAddrs(v.staleFEs, oi.targets)
		c.journalPlacement(v)
		c.reconcileStale(v)
		return false
	default: // txnFallback
		if !committed {
			// The gateway still steers at the pool; the BE may hold
			// reinstalled tables — safe dual state, vNIC stays offloaded.
			c.Stats.Aborts++
			c.journalResolve(v.VNIC, oi.epoch, false, nil)
			return false
		}
		old := append([]packet.IPv4(nil), v.fes...)
		v.offloaded = false
		v.fes = nil
		c.Stats.Fallbacks++
		c.journalResolve(v.VNIC, oi.epoch, true, nil)
		c.journalPlacement(v)
		if len(old) == 0 {
			return false
		}
		// Mirror the live commit path: stale senders may steer at the
		// old FEs for a learning interval; only then tear them down.
		c.schedule(fabric.LearnInterval+c.cfg.RTTAllowance, func() {
			c.teardownFallbackFEs(v, old)
			v.inProgress = false
		})
		return true
	}
}

// finishVNICRecovery closes one vNIC's chain: committed (or
// force-dirtied) state is re-pushed at a fresh epoch — strictly above
// anything the dead incarnation installed, thanks to the epoch folds —
// and the recovery completes when the last chain settles.
func (c *Controller) finishVNICRecovery(v *vnicState, keepInProgress bool) {
	if !keepInProgress {
		v.inProgress = false
	}
	if v.offloaded {
		c.pushConfig(v)
		c.pruneDown(v)
	} else if v.dirty {
		c.pushConfig(v)
	}
	c.recoverDone()
}

func (c *Controller) recoverDone() {
	c.recoverWait--
	if c.recoverWait == 0 {
		c.finishRecovery()
	}
}

func (c *Controller) finishRecovery() {
	now := c.loop.Now()
	c.statMu.Lock()
	c.recoveredAt = now
	start := c.recoverStart
	c.statMu.Unlock()
	c.ob.Event(now, "ctrl-recovered", 0, 0, "took_ms=%.1f", (now - start).Millis())
}

// mergeAddrs unions two address lists, preserving a's order.
func mergeAddrs(a, b []packet.IPv4) []packet.IPv4 {
	out := append([]packet.IPv4(nil), a...)
	for _, x := range b {
		dup := false
		for _, y := range out {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}
