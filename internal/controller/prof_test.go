package controller

import (
	"testing"

	"nezha/internal/packet"
	"nezha/internal/prof"
	"nezha/internal/sim"
	"nezha/internal/tables"
)

// TestSuggestOffloadRanksHotVNIC drives skewed slow-path load through
// two resident vNICs and checks the attribution-backed suggestion
// ranks the hot one first — and drops vNICs the controller could not
// act on.
func TestSuggestOffloadRanksHotVNIC(t *testing.T) {
	r := newRig(t, 2, nil)
	pr := prof.New()
	pr.SetClock(r.loop.Now)
	for _, vs := range r.sw {
		vs.EnableProf(pr)
	}
	r.ctrl.EnableProf(pr)

	home := r.sw[0]
	const hotVNIC, coldVNIC = 100, 200
	for _, vnic := range []uint32{hotVNIC, coldVNIC} {
		if err := home.AddVNIC(tables.NewRuleSet(vnic, 1), false); err != nil {
			t.Fatal(err)
		}
		r.gw.Set(vnic, home.Addr())
		r.ctrl.RegisterVNIC(VNICInfo{VNIC: vnic, Home: home.Addr(), MakeRules: mkRules(vnic)})
	}

	// Each distinct flow runs the slow path and a session install —
	// the relocatable work the ranking is built on. 40 flows on the
	// hot vNIC, 3 on the cold one.
	send := func(vnic uint32, flows int) {
		for i := 0; i < flows; i++ {
			ft := packet.FiveTuple{
				SrcIP: ip(10, 9, 0, 1), DstIP: ip(10, 9, 0, 2),
				SrcPort: uint16(5000 + i), DstPort: 80, Proto: packet.ProtoTCP,
			}
			p := packet.New(uint64(vnic)<<16|uint64(i), 1, vnic, ft, packet.DirTX, packet.FlagSYN, 64)
			p.SentAt = int64(r.loop.Now())
			home.FromVM(p)
		}
	}
	send(hotVNIC, 40)
	send(coldVNIC, 3)
	r.loop.Run(100 * sim.Millisecond)

	cands := r.ctrl.SuggestOffload(10)
	if len(cands) < 2 {
		t.Fatalf("want both vNICs as candidates, got %+v", cands)
	}
	if cands[0].VNIC != hotVNIC {
		t.Fatalf("hot vNIC not ranked first: %+v", cands)
	}
	if cands[0].RelocCycles <= cands[1].RelocCycles {
		t.Fatalf("ranking not strictly decreasing: %+v", cands)
	}
	if cands[0].Node != home.Addr().String() {
		t.Fatalf("candidate node = %q, want %q", cands[0].Node, home.Addr().String())
	}

	// An already-offloaded vNIC must drop out of the suggestions.
	r.ctrl.vnics[hotVNIC].offloaded = true
	for _, cand := range r.ctrl.SuggestOffload(0) {
		if cand.VNIC == hotVNIC {
			t.Fatalf("offloaded vNIC still suggested: %+v", cand)
		}
	}

	// No profiler attached → no suggestions, not a panic.
	r2 := newRig(t, 1, nil)
	if got := r2.ctrl.SuggestOffload(5); got != nil {
		t.Fatalf("profiler-less controller suggested %+v", got)
	}
}
