package controller

import (
	"strconv"

	"nezha/internal/obs"
)

// EnableObs publishes the controller's transaction and pool state into
// the registry and enables span/event recording at the transaction
// lifecycle points. Counters are snapshot-time funcs over the plain
// Stats fields (owned by the sim goroutine, which also runs
// snapshots); the per-vNIC and per-node gauges are emitted by a
// Collect callback so dynamic label sets (vNICs registered later,
// nodes joining) need no pre-registration. Also wires the underlying
// RPC transport's counters.
func (c *Controller) EnableObs(o *obs.Obs) {
	if o == nil {
		return
	}
	c.ob = o
	c.rpc.EnableObs(o)
	r := o.Reg
	r.Help("controller_offloads_total", "Offload transactions committed.")
	r.Help("controller_fallbacks_total", "Fallback transactions committed.")
	r.Help("controller_scaleouts_total", "FE pool scale-out transactions committed.")
	r.Help("controller_scaleins_total", "FE pool scale-in transactions committed.")
	r.Help("controller_failovers_total", "FE failovers executed after node-down declarations.")
	r.Help("controller_fes_added_total", "FE shards added across all transactions.")
	r.Help("controller_aborts_total", "Two-phase transactions aborted before commit.")
	r.Help("controller_rollbacks_total", "Prepared targets rolled back after an abort.")
	r.Help("controller_degraded_enters_total", "vNICs entering degraded (partial-pool) mode.")
	r.Help("controller_degraded_exits_total", "vNICs leaving degraded mode after repair.")
	r.Help("controller_repair_runs_total", "Degraded-pool repair attempts.")
	r.Help("ctrl_up", "1 while the controller is alive, 0 during a crash outage.")
	r.Help("ctrl_recoveries_total", "Completed controller crash recoveries.")
	r.Help("ctrl_recovery_ms", "Duration of the last completed recovery, milliseconds.")
	r.Help("ctrl_dup_side_effects_total", "Duplicate side effects suppressed during journal replay.")
	r.Help("journal_bytes", "Current journal size in bytes.")
	r.Help("journal_appends_total", "Records appended to the journal.")
	r.Help("journal_snapshots_total", "Journal compaction snapshots taken.")
	r.Help("controller_txns_inflight", "Two-phase transactions currently open.")
	r.Help("controller_vnic_offloaded", "1 when the vNIC is offloaded to an FE pool.")
	r.Help("controller_vnic_fes", "FE shards serving the vNIC.")
	r.Help("controller_vnic_epoch", "vNIC configuration epoch.")
	r.Help("controller_vnic_degraded", "1 while the vNIC's pool is degraded.")
	r.Help("controller_vnic_dirty", "1 while the vNIC needs reconciliation.")
	r.Help("controller_node_down", "1 while the controller believes the node is down.")
	r.Help("controller_node_cpu_util", "Last reported datapath CPU utilization, 0..1.")
	r.Help("controller_node_mem_util", "Last reported session-memory utilization, 0..1.")
	r.Help("controller_node_remote_share", "Fraction of node cycles spent on remote (FE) traffic.")
	r.Help("controller_node_fronted_vnics", "Remote vNICs this node fronts as an FE.")
	r.CounterFunc("controller_offloads_total", nil, func() uint64 { return c.Stats.Offloads })
	r.CounterFunc("controller_fallbacks_total", nil, func() uint64 { return c.Stats.Fallbacks })
	r.CounterFunc("controller_scaleouts_total", nil, func() uint64 { return c.Stats.ScaleOuts })
	r.CounterFunc("controller_scaleins_total", nil, func() uint64 { return c.Stats.ScaleIns })
	r.CounterFunc("controller_failovers_total", nil, func() uint64 { return c.Stats.Failovers })
	r.CounterFunc("controller_fes_added_total", nil, func() uint64 { return c.Stats.FEsAdded })
	r.CounterFunc("controller_aborts_total", nil, func() uint64 { return c.Stats.Aborts })
	r.CounterFunc("controller_rollbacks_total", nil, func() uint64 { return c.Stats.Rollbacks })
	r.CounterFunc("controller_degraded_enters_total", nil, func() uint64 { return c.Stats.DegradedEnters })
	r.CounterFunc("controller_degraded_exits_total", nil, func() uint64 { return c.Stats.DegradedExits })
	r.CounterFunc("controller_repair_runs_total", nil, func() uint64 { return c.Stats.RepairRuns })
	r.GaugeFunc("ctrl_up", nil, func() float64 { return b2f(!c.down) })
	r.CounterFunc("ctrl_recoveries_total", nil, func() uint64 { return c.Recoveries() })
	r.GaugeFunc("ctrl_recovery_ms", nil, func() float64 {
		start, end, ok := c.LastRecovery()
		if !ok || end == 0 {
			return 0
		}
		return (end - start).Millis()
	})
	r.CounterFunc("ctrl_dup_side_effects_total", nil, func() uint64 { return c.DupSideEffects() })
	r.GaugeFunc("journal_bytes", nil, func() float64 {
		if c.journal == nil {
			return 0
		}
		return float64(c.journal.SizeBytes())
	})
	r.CounterFunc("journal_appends_total", nil, func() uint64 {
		if c.journal == nil {
			return 0
		}
		return c.journal.Stats.Appends
	})
	r.CounterFunc("journal_snapshots_total", nil, func() uint64 {
		if c.journal == nil {
			return 0
		}
		return c.journal.Stats.Snapshots
	})
	r.GaugeFunc("controller_txns_inflight", nil, func() float64 {
		n := 0
		for _, v := range c.vnics {
			if v.txn != nil {
				n++
			}
		}
		return float64(n)
	})
	r.Collect(func(emit obs.Emit) {
		for _, id := range c.sortedVNICs() {
			v := c.vnics[id]
			l := obs.L("vnic", strconv.FormatUint(uint64(id), 10))
			emit("controller_vnic_offloaded", l, obs.KindGauge, b2f(v.offloaded))
			emit("controller_vnic_fes", l, obs.KindGauge, float64(len(v.fes)))
			emit("controller_vnic_epoch", l, obs.KindGauge, float64(v.epoch))
			emit("controller_vnic_degraded", l, obs.KindGauge, b2f(v.degraded))
			emit("controller_vnic_dirty", l, obs.KindGauge, b2f(v.dirty))
		}
		for _, addr := range c.sortedNodeAddrs() {
			n := c.nodes[addr]
			l := obs.L("node", addr.String())
			emit("controller_node_down", l, obs.KindGauge, b2f(n.down))
			emit("controller_node_cpu_util", l, obs.KindGauge, n.cpuUtil)
			emit("controller_node_mem_util", l, obs.KindGauge, n.memUtil)
			emit("controller_node_remote_share", l, obs.KindGauge, n.remoteShare)
			emit("controller_node_fronted_vnics", l, obs.KindGauge, float64(len(n.fronted)))
		}
	})
}

// spanBegin opens a control-plane transaction span (no-op when obs is
// disabled).
func (c *Controller) spanBegin(kind string, vnic uint32, epoch uint64) {
	if c.ob != nil {
		c.ob.Spans.Begin(kind, vnic, epoch, c.loop.Now())
	}
}

// spanEnd closes a transaction span with its outcome.
func (c *Controller) spanEnd(kind string, vnic uint32, epoch uint64, outcome string) {
	if c.ob != nil {
		c.ob.Spans.End(kind, vnic, epoch, c.loop.Now(), outcome)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
