package controller

import (
	"strconv"

	"nezha/internal/obs"
)

// EnableObs publishes the controller's transaction and pool state into
// the registry and enables span/event recording at the transaction
// lifecycle points. Counters are snapshot-time funcs over the plain
// Stats fields (owned by the sim goroutine, which also runs
// snapshots); the per-vNIC and per-node gauges are emitted by a
// Collect callback so dynamic label sets (vNICs registered later,
// nodes joining) need no pre-registration. Also wires the underlying
// RPC transport's counters.
func (c *Controller) EnableObs(o *obs.Obs) {
	if o == nil {
		return
	}
	c.ob = o
	c.rpc.EnableObs(o)
	r := o.Reg
	r.CounterFunc("controller_offloads_total", nil, func() uint64 { return c.Stats.Offloads })
	r.CounterFunc("controller_fallbacks_total", nil, func() uint64 { return c.Stats.Fallbacks })
	r.CounterFunc("controller_scaleouts_total", nil, func() uint64 { return c.Stats.ScaleOuts })
	r.CounterFunc("controller_scaleins_total", nil, func() uint64 { return c.Stats.ScaleIns })
	r.CounterFunc("controller_failovers_total", nil, func() uint64 { return c.Stats.Failovers })
	r.CounterFunc("controller_fes_added_total", nil, func() uint64 { return c.Stats.FEsAdded })
	r.CounterFunc("controller_aborts_total", nil, func() uint64 { return c.Stats.Aborts })
	r.CounterFunc("controller_rollbacks_total", nil, func() uint64 { return c.Stats.Rollbacks })
	r.CounterFunc("controller_degraded_enters_total", nil, func() uint64 { return c.Stats.DegradedEnters })
	r.CounterFunc("controller_degraded_exits_total", nil, func() uint64 { return c.Stats.DegradedExits })
	r.CounterFunc("controller_repair_runs_total", nil, func() uint64 { return c.Stats.RepairRuns })
	r.GaugeFunc("ctrl_up", nil, func() float64 { return b2f(!c.down) })
	r.CounterFunc("ctrl_recoveries_total", nil, func() uint64 { return c.Recoveries() })
	r.GaugeFunc("ctrl_recovery_ms", nil, func() float64 {
		start, end, ok := c.LastRecovery()
		if !ok || end == 0 {
			return 0
		}
		return (end - start).Millis()
	})
	r.CounterFunc("ctrl_dup_side_effects_total", nil, func() uint64 { return c.DupSideEffects() })
	r.GaugeFunc("journal_bytes", nil, func() float64 {
		if c.journal == nil {
			return 0
		}
		return float64(c.journal.SizeBytes())
	})
	r.CounterFunc("journal_appends_total", nil, func() uint64 {
		if c.journal == nil {
			return 0
		}
		return c.journal.Stats.Appends
	})
	r.CounterFunc("journal_snapshots_total", nil, func() uint64 {
		if c.journal == nil {
			return 0
		}
		return c.journal.Stats.Snapshots
	})
	r.GaugeFunc("controller_txns_inflight", nil, func() float64 {
		n := 0
		for _, v := range c.vnics {
			if v.txn != nil {
				n++
			}
		}
		return float64(n)
	})
	r.Collect(func(emit obs.Emit) {
		for _, id := range c.sortedVNICs() {
			v := c.vnics[id]
			l := obs.L("vnic", strconv.FormatUint(uint64(id), 10))
			emit("controller_vnic_offloaded", l, obs.KindGauge, b2f(v.offloaded))
			emit("controller_vnic_fes", l, obs.KindGauge, float64(len(v.fes)))
			emit("controller_vnic_epoch", l, obs.KindGauge, float64(v.epoch))
			emit("controller_vnic_degraded", l, obs.KindGauge, b2f(v.degraded))
			emit("controller_vnic_dirty", l, obs.KindGauge, b2f(v.dirty))
		}
		for _, addr := range c.sortedNodeAddrs() {
			n := c.nodes[addr]
			l := obs.L("node", addr.String())
			emit("controller_node_down", l, obs.KindGauge, b2f(n.down))
			emit("controller_node_cpu_util", l, obs.KindGauge, n.cpuUtil)
			emit("controller_node_mem_util", l, obs.KindGauge, n.memUtil)
			emit("controller_node_remote_share", l, obs.KindGauge, n.remoteShare)
			emit("controller_node_fronted_vnics", l, obs.KindGauge, float64(len(n.fronted)))
		}
	})
}

// spanBegin opens a control-plane transaction span (no-op when obs is
// disabled).
func (c *Controller) spanBegin(kind string, vnic uint32, epoch uint64) {
	if c.ob != nil {
		c.ob.Spans.Begin(kind, vnic, epoch, c.loop.Now())
	}
}

// spanEnd closes a transaction span with its outcome.
func (c *Controller) spanEnd(kind string, vnic uint32, epoch uint64, outcome string) {
	if c.ob != nil {
		c.ob.Spans.End(kind, vnic, epoch, c.loop.Now(), outcome)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
