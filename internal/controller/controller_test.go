package controller

import (
	"testing"

	"nezha/internal/fabric"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
)

func ip(a, b, c, d byte) packet.IPv4 { return packet.MakeIP(a, b, c, d) }

type rig struct {
	loop *sim.Loop
	fab  *fabric.Fabric
	gw   *fabric.Gateway
	ctrl *Controller
	sw   []*vswitch.VSwitch
}

func newRig(t *testing.T, n int, tors []int) *rig {
	t.Helper()
	r := &rig{loop: sim.NewLoop(9)}
	r.fab = fabric.New(r.loop)
	r.gw = fabric.NewGateway(r.loop)
	r.ctrl = New(r.loop, r.gw, DefaultConfig())
	for i := 0; i < n; i++ {
		tor := 0
		if tors != nil {
			tor = tors[i]
		}
		vs := vswitch.New(r.loop, r.fab, r.gw, vswitch.Config{Addr: ip(10, 0, 0, byte(i+1)), ToR: tor})
		r.sw = append(r.sw, vs)
		r.ctrl.RegisterNode(vs)
	}
	return r
}

func mkRules(vnic uint32) func() *tables.RuleSet {
	return func() *tables.RuleSet { return tables.NewRuleSet(vnic, 1) }
}

func TestSelectFEsPrefersSameToR(t *testing.T) {
	// Home in ToR 0 with 2 same-ToR candidates and many in ToR 1.
	r := newRig(t, 8, []int{0, 0, 0, 1, 1, 1, 1, 1})
	home := r.sw[0].Addr()
	fes := r.ctrl.selectFEs(home, 4, nil)
	if len(fes) != 4 {
		t.Fatalf("selected %d", len(fes))
	}
	sameToR := 0
	for _, a := range fes {
		if a == r.sw[1].Addr() || a == r.sw[2].Addr() {
			sameToR++
		}
	}
	if sameToR != 2 {
		t.Fatalf("same-ToR candidates used %d/2; selection order wrong: %v", sameToR, fes)
	}
	for _, a := range fes {
		if a == home {
			t.Fatal("home selected as its own FE")
		}
	}
}

func TestSelectFEsExcludesBusyAndDown(t *testing.T) {
	r := newRig(t, 5, nil)
	// Node 1 is busy (high sampled util), node 2 is down.
	r.ctrl.nodes[r.sw[1].Addr()].cpuUtil = 0.9
	r.ctrl.nodes[r.sw[2].Addr()].down = true
	fes := r.ctrl.selectFEs(r.sw[0].Addr(), 4, nil)
	for _, a := range fes {
		if a == r.sw[1].Addr() {
			t.Fatal("busy node selected")
		}
		if a == r.sw[2].Addr() {
			t.Fatal("down node selected")
		}
	}
	if len(fes) != 2 {
		t.Fatalf("want the 2 healthy candidates, got %d", len(fes))
	}
	// Explicit exclusion.
	fes = r.ctrl.selectFEs(r.sw[0].Addr(), 4, map[packet.IPv4]bool{r.sw[3].Addr(): true})
	for _, a := range fes {
		if a == r.sw[3].Addr() {
			t.Fatal("excluded node selected")
		}
	}
}

func TestForceOffloadWorkflow(t *testing.T) {
	r := newRig(t, 6, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})

	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if !r.ctrl.Offloaded(42) {
		t.Fatal("not offloaded")
	}
	if len(r.ctrl.FEsOf(42)) != 4 {
		t.Fatalf("FEs = %d, want 4 (InitialFEs)", len(r.ctrl.FEsOf(42)))
	}
	// FE hosts actually carry the instance.
	hosting := 0
	for _, vs := range r.sw {
		if vs.HostsFE(42) {
			hosting++
		}
	}
	if hosting != 4 {
		t.Fatalf("hosting = %d", hosting)
	}
	// The BE entered the final stage: rules gone, BE data charged.
	if got := r.sw[0].VNICRuleBytes(42); got != 0 {
		t.Fatalf("BE rule bytes = %d, want 0 after final stage", got)
	}
	if r.ctrl.Stats.Offloads != 1 {
		t.Fatalf("offload count = %d", r.ctrl.Stats.Offloads)
	}
	// Completion recorded in the Table 4 histogram.
	if r.ctrl.OffloadCompletion.Count() != 1 {
		t.Fatal("completion not recorded")
	}
	ms := r.ctrl.OffloadCompletion.Mean()
	if ms < 200 || ms > 4000 {
		t.Fatalf("completion = %.0f ms, want O(1s)", ms)
	}
	// Idempotent.
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
}

func TestForceOffloadErrors(t *testing.T) {
	r := newRig(t, 1, nil)
	if err := r.ctrl.ForceOffload(7); err == nil {
		t.Fatal("unknown vNIC accepted")
	}
	// No idle nodes: only the home exists.
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(7, 1), false); err != nil {
		t.Fatal(err)
	}
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 7, Home: r.sw[0].Addr(), MakeRules: mkRules(7)})
	if err := r.ctrl.ForceOffload(7); err != ErrNoIdleNodes {
		t.Fatalf("want ErrNoIdleNodes, got %v", err)
	}
}

func TestForceFallbackRoundtrip(t *testing.T) {
	r := newRig(t, 6, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if err := r.ctrl.ForceFallback(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(10 * sim.Second)
	if r.ctrl.Offloaded(42) {
		t.Fatal("still offloaded after fallback")
	}
	for _, vs := range r.sw {
		if vs.HostsFE(42) {
			t.Fatal("FE instance leaked after fallback")
		}
	}
	if got := r.sw[0].VNICRuleBytes(42); got == 0 {
		t.Fatal("rules not restored at home")
	}
	addrs, _ := r.gw.Lookup(42)
	if len(addrs) != 1 || addrs[0] != r.sw[0].Addr() {
		t.Fatalf("gateway after fallback: %v", addrs)
	}
	if r.ctrl.Stats.Fallbacks != 1 {
		t.Fatal("fallback not counted")
	}
}

func TestNodeDownEvictsAndReplenishes(t *testing.T) {
	r := newRig(t, 8, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	victim := r.ctrl.FEsOf(42)[0]

	r.ctrl.NodeDown(victim)
	r.loop.Run(10 * sim.Second)

	fes := r.ctrl.FEsOf(42)
	for _, a := range fes {
		if a == victim {
			t.Fatal("victim still in pool")
		}
	}
	if len(fes) != 4 {
		t.Fatalf("pool = %d, want MinFEs=4 (delete + add, §4.4)", len(fes))
	}
	// Duplicate NodeDown is a no-op.
	before := r.ctrl.Stats.Failovers
	r.ctrl.NodeDown(victim)
	if r.ctrl.Stats.Failovers != before {
		t.Fatal("duplicate NodeDown counted")
	}
	r.ctrl.NodeUp(victim)
	if r.ctrl.nodes[victim].down {
		t.Fatal("NodeUp did not clear")
	}
}

func TestNodeDownAboveMinKeepsPoolSmaller(t *testing.T) {
	// With 6 FEs, losing one leaves 5 ≥ MinFEs: delete only (§4.4).
	cfg := DefaultConfig()
	cfg.InitialFEs = 6
	r := newRig(t, 10, nil)
	r.ctrl.cfg = cfg
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if len(r.ctrl.FEsOf(42)) != 6 {
		t.Fatalf("precondition: %d FEs", len(r.ctrl.FEsOf(42)))
	}
	r.ctrl.NodeDown(r.ctrl.FEsOf(42)[0])
	r.loop.Run(10 * sim.Second)
	if got := len(r.ctrl.FEsOf(42)); got != 5 {
		t.Fatalf("pool = %d, want 5 (no automatic replacement above MinFEs)", got)
	}
}

func TestDefaultConfigValues(t *testing.T) {
	c := DefaultConfig()
	if c.OffloadThreshold != 0.70 || c.ScaleThreshold != 0.40 {
		t.Fatal("Fig 8 thresholds wrong")
	}
	if c.InitialFEs != 4 || c.MinFEs != 4 {
		t.Fatal("FE counts wrong (Appendix B.2)")
	}
}

func TestPushDelayDistribution(t *testing.T) {
	r := newRig(t, 1, nil)
	var sum sim.Time
	max := sim.Time(0)
	const n = 2000
	for i := 0; i < n; i++ {
		d := r.ctrl.pushDelay()
		if d <= 0 {
			t.Fatal("non-positive push delay")
		}
		sum += d
		if d > max {
			max = d
		}
	}
	avg := (sum / n).Seconds()
	if avg < 0.3 || avg > 1.2 {
		t.Fatalf("avg push delay = %.2fs, want sub-second", avg)
	}
	if max.Seconds() > 5 {
		t.Fatalf("max push delay = %.2fs, implausible", max.Seconds())
	}
}

func TestLinkDownEvictsFromOneBEOnly(t *testing.T) {
	// §C.1: a BE-FE link failure removes the FE from that BE's pools
	// only; other BEs sharing the FE keep it (the FE itself is fine).
	r := newRig(t, 10, nil)
	for _, vnic := range []uint32{41, 42} {
		home := r.sw[vnic-41].Addr() // vnic 41 on sw0, 42 on sw1
		if err := r.sw[vnic-41].AddVNIC(tables.NewRuleSet(vnic, 1), false); err != nil {
			t.Fatal(err)
		}
		r.gw.Set(vnic, home)
		r.ctrl.RegisterVNIC(VNICInfo{VNIC: vnic, Home: home, MakeRules: mkRules(vnic)})
		if err := r.ctrl.ForceOffload(vnic); err != nil {
			t.Fatal(err)
		}
	}
	r.loop.Run(5 * sim.Second)

	// Find an FE shared by both pools, or at least one of vnic 41's.
	fes41 := r.ctrl.FEsOf(41)
	if len(fes41) != 4 {
		t.Fatalf("precondition: %d FEs", len(fes41))
	}
	victim := fes41[0]
	shared := false
	for _, a := range r.ctrl.FEsOf(42) {
		if a == victim {
			shared = true
		}
	}

	r.ctrl.LinkDown(r.sw[0].Addr(), victim)
	r.loop.Run(r.loop.Now() + 8*sim.Second)

	for _, a := range r.ctrl.FEsOf(41) {
		if a == victim {
			t.Fatal("victim still serving vnic 41")
		}
	}
	if got := len(r.ctrl.FEsOf(41)); got < 4 {
		t.Fatalf("pool 41 not replenished: %d", got)
	}
	if shared {
		still := false
		for _, a := range r.ctrl.FEsOf(42) {
			if a == victim {
				still = true
			}
		}
		if !still {
			t.Fatal("vnic 42 (different BE) lost the FE too")
		}
	}
	// Unknown pairs are a no-op.
	r.ctrl.LinkDown(ip(9, 9, 9, 9), victim)
}

func TestOffloadToOperatorTargets(t *testing.T) {
	// §7.2: steer a vNIC to specific (e.g. upgraded) vSwitches.
	r := newRig(t, 8, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})

	targets := []packet.IPv4{r.sw[5].Addr(), r.sw[6].Addr()}
	if err := r.ctrl.OffloadTo(42, targets); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	got := r.ctrl.FEsOf(42)
	if len(got) != 2 || got[0] != targets[0] || got[1] != targets[1] {
		t.Fatalf("FEs = %v, want %v", got, targets)
	}
	if !r.sw[5].HostsFE(42) || !r.sw[6].HostsFE(42) {
		t.Fatal("targets not hosting")
	}

	// Error paths.
	if err := r.ctrl.OffloadTo(42, targets); err == nil {
		t.Fatal("double offload accepted")
	}
	if err := r.ctrl.OffloadTo(99, targets); err == nil {
		t.Fatal("unknown vNIC accepted")
	}
	if err := r.ctrl.ForceFallback(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(r.loop.Now() + 10*sim.Second)
	if err := r.ctrl.OffloadTo(42, nil); err == nil {
		t.Fatal("empty target set accepted")
	}
	if err := r.ctrl.OffloadTo(42, []packet.IPv4{r.sw[0].Addr()}); err == nil {
		t.Fatal("home as its own FE accepted")
	}
	if err := r.ctrl.OffloadTo(42, []packet.IPv4{ip(9, 9, 9, 9)}); err == nil {
		t.Fatal("unknown target accepted")
	}
}
