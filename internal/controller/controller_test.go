package controller

import (
	"testing"

	"nezha/internal/fabric"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
)

func ip(a, b, c, d byte) packet.IPv4 { return packet.MakeIP(a, b, c, d) }

type rig struct {
	loop *sim.Loop
	fab  *fabric.Fabric
	gw   *fabric.Gateway
	ctrl *Controller
	sw   []*vswitch.VSwitch
}

func newRig(t *testing.T, n int, tors []int) *rig {
	t.Helper()
	r := &rig{loop: sim.NewLoop(9)}
	r.fab = fabric.New(r.loop)
	r.gw = fabric.NewGateway(r.loop)
	r.ctrl = New(r.loop, r.fab, r.gw, DefaultConfig())
	for i := 0; i < n; i++ {
		tor := 0
		if tors != nil {
			tor = tors[i]
		}
		vs := vswitch.New(r.loop, r.fab, r.gw, vswitch.Config{Addr: ip(10, 0, 0, byte(i+1)), ToR: tor})
		r.sw = append(r.sw, vs)
		r.ctrl.RegisterNode(vs)
	}
	return r
}

func mkRules(vnic uint32) func() *tables.RuleSet {
	return func() *tables.RuleSet { return tables.NewRuleSet(vnic, 1) }
}

func TestSelectFEsPrefersSameToR(t *testing.T) {
	// Home in ToR 0 with 2 same-ToR candidates and many in ToR 1.
	r := newRig(t, 8, []int{0, 0, 0, 1, 1, 1, 1, 1})
	home := r.sw[0].Addr()
	fes := r.ctrl.selectFEs(home, 4, nil)
	if len(fes) != 4 {
		t.Fatalf("selected %d", len(fes))
	}
	sameToR := 0
	for _, a := range fes {
		if a == r.sw[1].Addr() || a == r.sw[2].Addr() {
			sameToR++
		}
	}
	if sameToR != 2 {
		t.Fatalf("same-ToR candidates used %d/2; selection order wrong: %v", sameToR, fes)
	}
	for _, a := range fes {
		if a == home {
			t.Fatal("home selected as its own FE")
		}
	}
}

func TestSelectFEsExcludesBusyAndDown(t *testing.T) {
	r := newRig(t, 5, nil)
	// Node 1 is busy (high sampled util), node 2 is down.
	r.ctrl.nodes[r.sw[1].Addr()].cpuUtil = 0.9
	r.ctrl.nodes[r.sw[2].Addr()].down = true
	fes := r.ctrl.selectFEs(r.sw[0].Addr(), 4, nil)
	for _, a := range fes {
		if a == r.sw[1].Addr() {
			t.Fatal("busy node selected")
		}
		if a == r.sw[2].Addr() {
			t.Fatal("down node selected")
		}
	}
	if len(fes) != 2 {
		t.Fatalf("want the 2 healthy candidates, got %d", len(fes))
	}
	// Explicit exclusion.
	fes = r.ctrl.selectFEs(r.sw[0].Addr(), 4, map[packet.IPv4]bool{r.sw[3].Addr(): true})
	for _, a := range fes {
		if a == r.sw[3].Addr() {
			t.Fatal("excluded node selected")
		}
	}
}

func TestForceOffloadWorkflow(t *testing.T) {
	r := newRig(t, 6, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})

	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if !r.ctrl.Offloaded(42) {
		t.Fatal("not offloaded")
	}
	if len(r.ctrl.FEsOf(42)) != 4 {
		t.Fatalf("FEs = %d, want 4 (InitialFEs)", len(r.ctrl.FEsOf(42)))
	}
	// FE hosts actually carry the instance.
	hosting := 0
	for _, vs := range r.sw {
		if vs.HostsFE(42) {
			hosting++
		}
	}
	if hosting != 4 {
		t.Fatalf("hosting = %d", hosting)
	}
	// The BE entered the final stage: rules gone, BE data charged.
	if got := r.sw[0].VNICRuleBytes(42); got != 0 {
		t.Fatalf("BE rule bytes = %d, want 0 after final stage", got)
	}
	if r.ctrl.Stats.Offloads != 1 {
		t.Fatalf("offload count = %d", r.ctrl.Stats.Offloads)
	}
	// Completion recorded in the Table 4 histogram.
	if r.ctrl.OffloadCompletion.Count() != 1 {
		t.Fatal("completion not recorded")
	}
	ms := r.ctrl.OffloadCompletion.Mean()
	if ms < 200 || ms > 4000 {
		t.Fatalf("completion = %.0f ms, want O(1s)", ms)
	}
	// Idempotent.
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
}

func TestForceOffloadErrors(t *testing.T) {
	r := newRig(t, 1, nil)
	if err := r.ctrl.ForceOffload(7); err == nil {
		t.Fatal("unknown vNIC accepted")
	}
	// No idle nodes: only the home exists.
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(7, 1), false); err != nil {
		t.Fatal(err)
	}
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 7, Home: r.sw[0].Addr(), MakeRules: mkRules(7)})
	if err := r.ctrl.ForceOffload(7); err != ErrNoIdleNodes {
		t.Fatalf("want ErrNoIdleNodes, got %v", err)
	}
}

func TestForceFallbackRoundtrip(t *testing.T) {
	r := newRig(t, 6, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if err := r.ctrl.ForceFallback(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(10 * sim.Second)
	if r.ctrl.Offloaded(42) {
		t.Fatal("still offloaded after fallback")
	}
	for _, vs := range r.sw {
		if vs.HostsFE(42) {
			t.Fatal("FE instance leaked after fallback")
		}
	}
	if got := r.sw[0].VNICRuleBytes(42); got == 0 {
		t.Fatal("rules not restored at home")
	}
	addrs, _ := r.gw.Lookup(42)
	if len(addrs) != 1 || addrs[0] != r.sw[0].Addr() {
		t.Fatalf("gateway after fallback: %v", addrs)
	}
	if r.ctrl.Stats.Fallbacks != 1 {
		t.Fatal("fallback not counted")
	}
}

func TestNodeDownEvictsAndReplenishes(t *testing.T) {
	r := newRig(t, 8, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	victim := r.ctrl.FEsOf(42)[0]

	r.ctrl.NodeDown(victim)
	r.loop.Run(10 * sim.Second)

	fes := r.ctrl.FEsOf(42)
	for _, a := range fes {
		if a == victim {
			t.Fatal("victim still in pool")
		}
	}
	if len(fes) != 4 {
		t.Fatalf("pool = %d, want MinFEs=4 (delete + add, §4.4)", len(fes))
	}
	// Duplicate NodeDown is a no-op.
	before := r.ctrl.Stats.Failovers
	r.ctrl.NodeDown(victim)
	if r.ctrl.Stats.Failovers != before {
		t.Fatal("duplicate NodeDown counted")
	}
	r.ctrl.NodeUp(victim)
	if r.ctrl.nodes[victim].down {
		t.Fatal("NodeUp did not clear")
	}
}

func TestNodeDownAboveMinKeepsPoolSmaller(t *testing.T) {
	// With 6 FEs, losing one leaves 5 ≥ MinFEs: delete only (§4.4).
	cfg := DefaultConfig()
	cfg.InitialFEs = 6
	r := newRig(t, 10, nil)
	r.ctrl.cfg = cfg
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if len(r.ctrl.FEsOf(42)) != 6 {
		t.Fatalf("precondition: %d FEs", len(r.ctrl.FEsOf(42)))
	}
	r.ctrl.NodeDown(r.ctrl.FEsOf(42)[0])
	r.loop.Run(10 * sim.Second)
	if got := len(r.ctrl.FEsOf(42)); got != 5 {
		t.Fatalf("pool = %d, want 5 (no automatic replacement above MinFEs)", got)
	}
}

func TestDefaultConfigValues(t *testing.T) {
	c := DefaultConfig()
	if c.OffloadThreshold != 0.70 || c.ScaleThreshold != 0.40 {
		t.Fatal("Fig 8 thresholds wrong")
	}
	if c.InitialFEs != 4 || c.MinFEs != 4 {
		t.Fatal("FE counts wrong (Appendix B.2)")
	}
}

func TestPushDelayDistribution(t *testing.T) {
	r := newRig(t, 1, nil)
	var sum sim.Time
	max := sim.Time(0)
	const n = 2000
	for i := 0; i < n; i++ {
		d := r.ctrl.pushDelay()
		if d <= 0 {
			t.Fatal("non-positive push delay")
		}
		sum += d
		if d > max {
			max = d
		}
	}
	avg := (sum / n).Seconds()
	if avg < 0.3 || avg > 1.2 {
		t.Fatalf("avg push delay = %.2fs, want sub-second", avg)
	}
	if max.Seconds() > 5 {
		t.Fatalf("max push delay = %.2fs, implausible", max.Seconds())
	}
}

func TestLinkDownEvictsFromOneBEOnly(t *testing.T) {
	// §C.1: a BE-FE link failure removes the FE from that BE's pools
	// only; other BEs sharing the FE keep it (the FE itself is fine).
	r := newRig(t, 10, nil)
	for _, vnic := range []uint32{41, 42} {
		home := r.sw[vnic-41].Addr() // vnic 41 on sw0, 42 on sw1
		if err := r.sw[vnic-41].AddVNIC(tables.NewRuleSet(vnic, 1), false); err != nil {
			t.Fatal(err)
		}
		r.gw.Set(vnic, home)
		r.ctrl.RegisterVNIC(VNICInfo{VNIC: vnic, Home: home, MakeRules: mkRules(vnic)})
		if err := r.ctrl.ForceOffload(vnic); err != nil {
			t.Fatal(err)
		}
	}
	r.loop.Run(5 * sim.Second)

	// Find an FE shared by both pools, or at least one of vnic 41's.
	fes41 := r.ctrl.FEsOf(41)
	if len(fes41) != 4 {
		t.Fatalf("precondition: %d FEs", len(fes41))
	}
	victim := fes41[0]
	shared := false
	for _, a := range r.ctrl.FEsOf(42) {
		if a == victim {
			shared = true
		}
	}

	r.ctrl.LinkDown(r.sw[0].Addr(), victim)
	r.loop.Run(r.loop.Now() + 8*sim.Second)

	for _, a := range r.ctrl.FEsOf(41) {
		if a == victim {
			t.Fatal("victim still serving vnic 41")
		}
	}
	if got := len(r.ctrl.FEsOf(41)); got < 4 {
		t.Fatalf("pool 41 not replenished: %d", got)
	}
	if shared {
		still := false
		for _, a := range r.ctrl.FEsOf(42) {
			if a == victim {
				still = true
			}
		}
		if !still {
			t.Fatal("vnic 42 (different BE) lost the FE too")
		}
	}
	// Unknown pairs are a no-op.
	r.ctrl.LinkDown(ip(9, 9, 9, 9), victim)
}

func TestOffloadToOperatorTargets(t *testing.T) {
	// §7.2: steer a vNIC to specific (e.g. upgraded) vSwitches.
	r := newRig(t, 8, nil)
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})

	targets := []packet.IPv4{r.sw[5].Addr(), r.sw[6].Addr()}
	if err := r.ctrl.OffloadTo(42, targets); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	got := r.ctrl.FEsOf(42)
	if len(got) != 2 || got[0] != targets[0] || got[1] != targets[1] {
		t.Fatalf("FEs = %v, want %v", got, targets)
	}
	if !r.sw[5].HostsFE(42) || !r.sw[6].HostsFE(42) {
		t.Fatal("targets not hosting")
	}

	// Error paths.
	if err := r.ctrl.OffloadTo(42, targets); err == nil {
		t.Fatal("double offload accepted")
	}
	if err := r.ctrl.OffloadTo(99, targets); err == nil {
		t.Fatal("unknown vNIC accepted")
	}
	if err := r.ctrl.ForceFallback(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(r.loop.Now() + 10*sim.Second)
	if err := r.ctrl.OffloadTo(42, nil); err == nil {
		t.Fatal("empty target set accepted")
	}
	if err := r.ctrl.OffloadTo(42, []packet.IPv4{r.sw[0].Addr()}); err == nil {
		t.Fatal("home as its own FE accepted")
	}
	if err := r.ctrl.OffloadTo(42, []packet.IPv4{ip(9, 9, 9, 9)}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

// addVNIC wires vNIC 42 at sw[0] the way the cluster layer would.
func addVNIC42(t *testing.T, r *rig) {
	t.Helper()
	if err := r.sw[0].AddVNIC(tables.NewRuleSet(42, 1), false); err != nil {
		t.Fatal(err)
	}
	r.gw.Set(42, r.sw[0].Addr())
	r.ctrl.RegisterVNIC(VNICInfo{VNIC: 42, Home: r.sw[0].Addr(), MakeRules: mkRules(42)})
}

func TestOffloadAbortedByCrashMidPrepare(t *testing.T) {
	r := newRig(t, 6, nil)
	addVNIC42(t, r)
	byAddr := map[packet.IPv4]*vswitch.VSwitch{}
	for _, vs := range r.sw {
		byAddr[vs.Addr()] = vs
	}
	// One prepare target dies before it can ack its install. With the
	// default all-targets quorum the transaction must abort.
	var victim packet.IPv4
	armed := true
	r.ctrl.SetPrepareHook(func(vnic uint32, targets []packet.IPv4) {
		if !armed {
			return
		}
		armed = false
		victim = targets[0]
		byAddr[victim].Crash()
	})
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(6 * sim.Second)

	if r.ctrl.Offloaded(42) {
		t.Fatal("offload committed despite a crashed prepare target")
	}
	if r.ctrl.Stats.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", r.ctrl.Stats.Aborts)
	}
	if r.ctrl.Stats.Offloads != 0 {
		t.Fatal("aborted offload counted as completed")
	}
	// Rollback: no healthy node keeps a prepared FE instance.
	for _, vs := range r.sw {
		if vs.Addr() != victim && vs.HostsFE(42) {
			t.Fatalf("prepared FE leaked at %v after abort", vs.Addr())
		}
	}
	// The gateway was never flipped: the vNIC is fully local.
	if addrs, _ := r.gw.Lookup(42); len(addrs) != 1 || addrs[0] != r.sw[0].Addr() {
		addrs, _ := r.gw.Lookup(42)
		t.Fatalf("gateway after abort: %v, want just the home", addrs)
	}
	// Inside the cooldown the retry is refused...
	if err := r.ctrl.ForceOffload(42); err != ErrCoolingDown {
		t.Fatalf("retry inside cooldown: %v, want ErrCoolingDown", err)
	}
	// ...and past it the offload goes through.
	byAddr[victim].Revive()
	r.loop.Run(r.loop.Now() + 6*sim.Second)
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatalf("retry after cooldown: %v", err)
	}
	r.loop.Run(r.loop.Now() + 6*sim.Second)
	if !r.ctrl.Offloaded(42) {
		t.Fatal("retry after cooldown did not commit")
	}
	// The parked teardown on the revived victim eventually resolves.
	r.ctrl.repairTick()
	r.loop.Run(r.loop.Now() + 6*sim.Second)
	if in := r.ctrl.nodes[victim].pendingRemoval; len(in) != 0 && !r.sw[0].HostsFE(42) {
		t.Fatalf("victim teardown never reconciled: %v", in)
	}
}

func TestScaleOutWithAllCandidatesExcluded(t *testing.T) {
	// Exactly home + InitialFEs switches: after the offload there is
	// no spare capacity anywhere.
	r := newRig(t, 5, nil)
	addVNIC42(t, r)
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if len(r.ctrl.FEsOf(42)) != 4 {
		t.Fatalf("precondition: pool = %d", len(r.ctrl.FEsOf(42)))
	}
	v := r.ctrl.vnics[42]
	// A scale-out with nothing to select is a clean no-op: no dangling
	// transaction, pool at the floor so not degraded either.
	if r.ctrl.scaleOutOpts(v, 2, true) {
		t.Fatal("scale-out claims to have started with zero candidates")
	}
	if v.txn != nil || v.scaling {
		t.Fatal("no-op scale-out left transaction state behind")
	}
	if r.ctrl.Degraded(42) {
		t.Fatal("pool at the floor marked degraded")
	}
	// Losing a member with no replacement flags the pool degraded.
	r.ctrl.NodeDown(r.ctrl.FEsOf(42)[0])
	r.loop.Run(r.loop.Now() + 5*sim.Second)
	if got := len(r.ctrl.FEsOf(42)); got != 3 {
		t.Fatalf("pool after eviction = %d, want 3", got)
	}
	if !r.ctrl.Degraded(42) {
		t.Fatal("short pool with no candidates not flagged degraded")
	}
	if r.ctrl.Stats.ScaleOuts != 0 {
		t.Fatal("phantom scale-out committed")
	}
}

func TestFallbackAbortsWhenBEPushFails(t *testing.T) {
	r := newRig(t, 6, nil)
	addVNIC42(t, r)
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)
	if !r.ctrl.Offloaded(42) {
		t.Fatal("precondition: not offloaded")
	}
	if got := r.sw[0].VNICRuleBytes(42); got != 0 {
		t.Fatalf("precondition: home still holds %d rule bytes (finalize never ran)", got)
	}
	// Fill the home's config memory so FallbackStart cannot reinstall
	// the rule tables.
	free := r.sw[0].MemFreeBytes()
	release, ok := r.sw[0].InjectMemPressure(free - 8)
	if !ok {
		t.Fatalf("could not inject %d bytes of pressure", free-8)
	}
	if err := r.ctrl.ForceFallback(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(r.loop.Now() + 5*sim.Second)
	if !r.ctrl.Offloaded(42) {
		t.Fatal("fallback committed despite the BE rejecting its tables")
	}
	if r.ctrl.Stats.Aborts != 1 || r.ctrl.Stats.Fallbacks != 0 {
		t.Fatalf("Aborts=%d Fallbacks=%d, want 1/0", r.ctrl.Stats.Aborts, r.ctrl.Stats.Fallbacks)
	}
	if v := r.ctrl.vnics[42]; v.txn != nil || v.inProgress {
		t.Fatal("aborted fallback left transaction state behind")
	}
	// Releasing the pressure makes the retry succeed.
	release()
	if err := r.ctrl.ForceFallback(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(r.loop.Now() + 10*sim.Second)
	if r.ctrl.Offloaded(42) {
		t.Fatal("fallback retry did not commit")
	}
	if r.sw[0].VNICRuleBytes(42) == 0 {
		t.Fatal("rules not restored at home")
	}
}

func TestDegradedPoolRepairConverges(t *testing.T) {
	r := newRig(t, 5, nil)
	addVNIC42(t, r)
	// Drive the repair loop the way Start would, without the
	// threshold-decision tickers muddying the scenario.
	r.loop.Every(r.ctrl.cfg.RepairInterval, r.ctrl.repairTick)
	if err := r.ctrl.ForceOffload(42); err != nil {
		t.Fatal(err)
	}
	r.loop.Run(5 * sim.Second)

	victims := r.ctrl.FEsOf(42)[:2]
	for _, a := range victims {
		r.ctrl.NodeDown(a)
	}
	r.loop.Run(r.loop.Now() + 5*sim.Second)
	if !r.ctrl.Degraded(42) {
		t.Fatal("pool at 2/4 with no candidates not degraded")
	}
	if r.ctrl.Stats.DegradedEnters == 0 {
		t.Fatal("degraded entry not counted")
	}

	// Revival gives the repair loop candidates again; it must converge
	// back to the floor and clear the alarm.
	for _, a := range victims {
		r.ctrl.NodeUp(a)
	}
	r.loop.Run(r.loop.Now() + 15*sim.Second)
	if got := len(r.ctrl.FEsOf(42)); got != 4 {
		t.Fatalf("pool after repair = %d, want 4", got)
	}
	if r.ctrl.Degraded(42) {
		t.Fatal("alarm not cleared after the pool recovered")
	}
	if r.ctrl.Stats.DegradedExits == 0 {
		t.Fatal("degraded exit not counted")
	}
}
