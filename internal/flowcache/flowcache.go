// Package flowcache implements the session table (Fig 1): cached
// bidirectional flows holding pre-actions, session state, or both,
// keyed by (VPC ID, normalized 5-tuple) for exact-match fast-path
// processing.
//
// The same structure serves three roles:
//
//   - a monolithic vSwitch stores pre-actions AND state per entry;
//   - a Nezha frontend (FE) stores pre-action-only entries — the
//     stateless "cached flows" that are safe to regenerate anywhere;
//   - a Nezha backend (BE) stores state-only entries — the single
//     local copy of session state.
//
// Every entry is charged to a byte budget, which is how the paper's
// "#concurrent flows limited by memory on fast path" bottleneck
// arises: when the budget is exhausted, inserts fail and new flows
// are dropped (an overload). Aging follows the state's FSM phase
// (short for establishing sessions, §7.3).
//
// Layout: the table is sharded by session-key hash into numShards
// open-addressed arrays (linear probing, backward-shift deletion,
// pointer buckets over a freelist of entries). Shard selection uses
// the same hash the per-core dispatcher uses (packet.RSSWorker), so
// for any power-of-two worker count W dividing numShards, worker w
// touches exactly the shards s with s ≡ w (mod W) — each worker owns
// its slice of the flowcache. The *H method variants accept the
// caller's precomputed key hash so the datapath hashes each packet's
// key once.
package flowcache

import (
	"errors"

	"nezha/internal/packet"
	"nezha/internal/state"
	"nezha/internal/tables"
)

// Per-entry memory footprints (bytes). A full entry is O(100B) as the
// paper reports: bidirectional 5-tuple + VPC + pre-actions + state.
const (
	EntryOverheadBytes = 64 // key, links, aging bookkeeping
	PreActionsBytes    = 64 // bidirectional pre-actions
)

// ErrNoMemory is returned when inserting would exceed the byte budget.
var ErrNoMemory = errors.New("flowcache: memory budget exhausted")

// Entry is one session's cached record.
type Entry struct {
	Key  packet.SessionKey
	VNIC uint32

	// HasPre marks cached pre-actions (fast-path rules result).
	HasPre bool
	Pre    tables.PreActions
	// PreVersion is the RuleSet version the pre-actions were derived
	// from; a version mismatch is treated as a miss and the entry is
	// regenerated (rule-table change invalidation, §3.2.2).
	PreVersion uint64

	// HasState marks locally maintained session state.
	HasState bool
	State    state.State

	// LastSeen is the last access time (ns), for aging.
	LastSeen int64

	// hash caches Key.Hash() for probing and rehash.
	hash uint64
	// free links recycled entries; nil while the entry is live.
	free *Entry
}

// SizeOf reports the bytes e occupies under this table's layout — the
// accounting the profiler uses to attribute session-table residency
// per vNIC at drain time.
func (t *Table) SizeOf(e *Entry) int {
	return e.sizeBytes(!t.cfg.VariableState)
}

func (e *Entry) sizeBytes(fixedState bool) int {
	n := EntryOverheadBytes
	if e.HasPre {
		n += PreActionsBytes
	}
	if e.HasState {
		if fixedState {
			n += state.FixedSizeBytes
		} else {
			n += e.State.EncodedSize()
		}
	}
	return n
}

// Config controls a table's budget and layout.
type Config struct {
	// MaxBytes is the memory budget; 0 means unlimited.
	MaxBytes int
	// VariableState stores states at their encoded size instead of
	// the fixed 64 B slot — the §7.1 "potential to increase
	// #concurrent flows" ablation.
	VariableState bool
}

// numShards is the shard count; must stay a power of two so shard
// ownership aligns with packet.RSSWorker for power-of-two worker
// counts (see package comment).
const numShards = 8

// minShardBuckets keeps tiny shards probe-friendly.
const minShardBuckets = 8

// shard is one open-addressed bucket array (linear probing).
type shard struct {
	buckets []*Entry
	mask    uint64
	n       int
}

// Table is the session table. Not safe for concurrent use; the
// simulation is single-threaded by design (per-core workers partition
// flows, they do not introduce parallelism).
type Table struct {
	cfg    Config
	shards [numShards]shard
	count  int
	mem    int
	free   *Entry // recycled entries

	// scratch collects victims for two-pass bulk deletion (Sweep,
	// InvalidateVNIC) so iteration never races backward-shift moves.
	scratch []*Entry

	// Counters for the experiments.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Rejects   uint64
}

// New returns an empty table.
func New(cfg Config) *Table {
	t := &Table{cfg: cfg}
	for i := range t.shards {
		t.shards[i].init()
	}
	return t
}

func (s *shard) init() {
	s.buckets = make([]*Entry, minShardBuckets)
	s.mask = minShardBuckets - 1
	s.n = 0
}

// shardOf selects the shard for a hash. Uses the low bits — the same
// bits packet.RSSWorker reduces — so worker ownership and shard
// ownership coincide for power-of-two worker counts.
func (t *Table) shardOf(hash uint64) *shard {
	return &t.shards[hash&(numShards-1)]
}

// probe returns the entry for (key, hash), or nil.
func (s *shard) probe(key packet.SessionKey, hash uint64) *Entry {
	i := hash & s.mask
	for {
		e := s.buckets[i]
		if e == nil {
			return nil
		}
		if e.hash == hash && e.Key == key {
			return e
		}
		i = (i + 1) & s.mask
	}
}

// insert places e (not already present) into the shard, growing first
// when load would exceed 3/4.
func (s *shard) insert(e *Entry) {
	if uint64(s.n+1)*4 > (s.mask+1)*3 {
		s.grow()
	}
	i := e.hash & s.mask
	for s.buckets[i] != nil {
		i = (i + 1) & s.mask
	}
	s.buckets[i] = e
	s.n++
}

func (s *shard) grow() {
	old := s.buckets
	size := (s.mask + 1) * 2
	s.buckets = make([]*Entry, size)
	s.mask = size - 1
	for _, e := range old {
		if e == nil {
			continue
		}
		i := e.hash & s.mask
		for s.buckets[i] != nil {
			i = (i + 1) & s.mask
		}
		s.buckets[i] = e
	}
}

// remove deletes the slot holding (key, hash) via backward shift,
// keeping every remaining entry reachable from its home slot. Returns
// the removed entry or nil.
func (s *shard) remove(key packet.SessionKey, hash uint64) *Entry {
	i := hash & s.mask
	for {
		e := s.buckets[i]
		if e == nil {
			return nil
		}
		if e.hash == hash && e.Key == key {
			break
		}
		i = (i + 1) & s.mask
	}
	victim := s.buckets[i]
	s.buckets[i] = nil
	s.n--
	// Backward shift: pull displaced successors into the hole.
	j := i
	for {
		j = (j + 1) & s.mask
		e := s.buckets[j]
		if e == nil {
			return victim
		}
		home := e.hash & s.mask
		if ((j-home)&s.mask) >= ((j-i)&s.mask) {
			s.buckets[i] = e
			s.buckets[j] = nil
			i = j
		}
	}
}

// alloc returns a zeroed entry, reusing the freelist when possible.
func (t *Table) alloc() *Entry {
	e := t.free
	if e == nil {
		return &Entry{}
	}
	t.free = e.free
	*e = Entry{}
	return e
}

// recycle returns a removed entry to the freelist. Callers must not
// retain the pointer: entries are reused by later inserts.
func (t *Table) recycle(e *Entry) {
	*e = Entry{free: t.free}
	t.free = e
}

// Len returns the number of entries.
func (t *Table) Len() int { return t.count }

// MemBytes returns the bytes currently charged.
func (t *Table) MemBytes() int { return t.mem }

// MaxBytes returns the configured budget (0 = unlimited).
func (t *Table) MaxBytes() int { return t.cfg.MaxBytes }

// SetMaxBytes adjusts the budget (offload/fallback resizes the
// partitions). Shrinking below current use does not evict eagerly;
// the next Sweep or insert pressure handles it.
func (t *Table) SetMaxBytes(n int) { t.cfg.MaxBytes = n }

// Lookup returns the entry for key, counting a hit or miss, and
// refreshes LastSeen on hit.
func (t *Table) Lookup(key packet.SessionKey, now int64) *Entry {
	return t.LookupH(key, key.Hash(), now)
}

// LookupH is Lookup with the key hash precomputed by the caller (the
// datapath hashes each packet's key once and reuses it for worker
// dispatch, shard selection, and probing).
func (t *Table) LookupH(key packet.SessionKey, hash uint64, now int64) *Entry {
	e := t.shardOf(hash).probe(key, hash)
	if e == nil {
		t.Misses++
		return nil
	}
	t.Hits++
	e.LastSeen = now
	return e
}

// Peek returns the entry without touching counters or LastSeen.
func (t *Table) Peek(key packet.SessionKey) *Entry {
	return t.PeekH(key, key.Hash())
}

// PeekH is Peek with a precomputed hash.
func (t *Table) PeekH(key packet.SessionKey, hash uint64) *Entry {
	return t.shardOf(hash).probe(key, hash)
}

// Hit records a lookup hit served from an entry the caller already
// holds (the burst pipeline's eligibility probe), with exactly the
// side effects LookupH's hit path has: the hit counter and the entry's
// LastSeen refresh. Skipping the duplicate probe this way keeps every
// observable — counters, aging — identical to probing again.
func (t *Table) Hit(e *Entry, now int64) {
	t.Hits++
	e.LastSeen = now
}

// GetOrCreate returns the existing entry or inserts an empty one,
// charging its overhead. It returns ErrNoMemory when the budget
// cannot fit a new entry.
func (t *Table) GetOrCreate(key packet.SessionKey, vnic uint32, now int64) (*Entry, error) {
	return t.GetOrCreateH(key, key.Hash(), vnic, now)
}

// GetOrCreateH is GetOrCreate with a precomputed hash.
func (t *Table) GetOrCreateH(key packet.SessionKey, hash uint64, vnic uint32, now int64) (*Entry, error) {
	s := t.shardOf(hash)
	if e := s.probe(key, hash); e != nil {
		e.LastSeen = now
		return e, nil
	}
	sz := EntryOverheadBytes // a fresh entry has neither pre nor state
	if t.cfg.MaxBytes > 0 && t.mem+sz > t.cfg.MaxBytes {
		t.Rejects++
		return nil, ErrNoMemory
	}
	e := t.alloc()
	e.Key, e.VNIC, e.LastSeen, e.hash = key, vnic, now, hash
	s.insert(e)
	t.count++
	t.mem += sz
	return e, nil
}

// mutate applies fn to e, re-charging its size delta. It returns
// ErrNoMemory (and rolls back) if growth would exceed the budget.
func (t *Table) mutate(e *Entry, fn func(*Entry)) error {
	before := e.sizeBytes(!t.cfg.VariableState)
	saved := *e
	fn(e)
	after := e.sizeBytes(!t.cfg.VariableState)
	if after > before && t.cfg.MaxBytes > 0 && t.mem+after-before > t.cfg.MaxBytes {
		*e = saved
		t.Rejects++
		return ErrNoMemory
	}
	t.mem += after - before
	return nil
}

// SetPre installs pre-actions (cached flow) on an entry.
func (t *Table) SetPre(e *Entry, pre tables.PreActions, version uint64) error {
	if e.HasPre {
		// Size is unchanged (pre-actions charge a fixed 64 B), so the
		// full mutate round-trip (two size computations plus a ~160 B
		// entry copy) is skipped.
		e.Pre = pre
		e.PreVersion = version
		return nil
	}
	return t.mutate(e, func(e *Entry) {
		e.HasPre = true
		e.Pre = pre
		e.PreVersion = version
	})
}

// SetState installs or replaces the session state on an entry.
func (t *Table) SetState(e *Entry, s state.State) error {
	if e.HasState && !t.cfg.VariableState {
		// Fixed-size layout: a state slot is 64 B regardless of
		// content, so replacement cannot change the charge.
		e.State = s
		return nil
	}
	return t.mutate(e, func(e *Entry) {
		e.HasState = true
		e.State = s
	})
}

// TouchState advances the entry's state for one packet (FSM + stats),
// re-charging variable-size growth.
func (t *Table) TouchState(e *Entry, dir packet.Direction, flags packet.TCPFlags, payloadLen int, now int64) error {
	if e.HasState && !t.cfg.VariableState {
		// Hot path: under the fixed layout the charge cannot move, so
		// the FSM advances in place with no copy and no budget check.
		e.State.Touch(dir, flags, payloadLen, now)
		return nil
	}
	return t.mutate(e, func(e *Entry) {
		e.HasState = true
		e.State.Touch(dir, flags, payloadLen, now)
	})
}

// DropPre removes cached pre-actions from an entry, refunding their
// memory — the BE deletes its cached flows when entering the final
// offload stage while keeping the states (§4.2.1).
func (t *Table) DropPre(e *Entry) {
	if !e.HasPre {
		return
	}
	_ = t.mutate(e, func(e *Entry) {
		e.HasPre = false
		e.Pre = tables.PreActions{}
		e.PreVersion = 0
	})
}

// Delete removes an entry, refunding its memory.
func (t *Table) Delete(key packet.SessionKey) {
	t.deleteH(key, key.Hash())
}

func (t *Table) deleteH(key packet.SessionKey, hash uint64) {
	e := t.shardOf(hash).remove(key, hash)
	if e == nil {
		return
	}
	t.mem -= e.sizeBytes(!t.cfg.VariableState)
	t.count--
	t.recycle(e)
}

// bulkDelete removes every entry fn selects, two-pass: victims are
// collected first so backward-shift compaction never disturbs the
// iteration. The eviction SET is exactly the set a one-pass map
// delete produced.
func (t *Table) bulkDelete(fn func(*Entry) bool) int {
	victims := t.scratch[:0]
	for si := range t.shards {
		for _, e := range t.shards[si].buckets {
			if e != nil && fn(e) {
				victims = append(victims, e)
			}
		}
	}
	for _, e := range victims {
		t.deleteH(e.Key, e.hash)
	}
	n := len(victims)
	for i := range victims {
		victims[i] = nil
	}
	t.scratch = victims[:0]
	return n
}

// InvalidateVNIC drops every entry belonging to vnic — used when a
// vNIC's rule tables are withdrawn from a node.
func (t *Table) InvalidateVNIC(vnic uint32) int {
	return t.bulkDelete(func(e *Entry) bool { return e.VNIC == vnic })
}

// Clear drops everything.
func (t *Table) Clear() {
	for i := range t.shards {
		t.shards[i].init()
	}
	t.count = 0
	t.mem = 0
	t.free = nil
}

// idleAging is the eviction idle time for entries without state (FE
// cached flows age like established sessions).
const idleAging = state.AgingEstablished

// Sweep evicts expired entries at virtual time now and returns the
// eviction count. State-bearing entries age per their FSM phase
// (short SYN aging, §7.3); stateless cached flows use the idle aging.
func (t *Table) Sweep(now int64) int {
	n := t.bulkDelete(func(e *Entry) bool {
		if e.HasState {
			return e.State.Expired(now)
		}
		return now-e.LastSeen > idleAging
	})
	t.Evictions += uint64(n)
	return n
}

// Range iterates entries; fn returning false stops early. Iteration
// order is shard-then-bucket order — deterministic, unlike the map
// iteration it replaces; callers must not insert or delete during the
// walk.
func (t *Table) Range(fn func(*Entry) bool) {
	for si := range t.shards {
		for _, e := range t.shards[si].buckets {
			if e != nil && !fn(e) {
				return
			}
		}
	}
}
