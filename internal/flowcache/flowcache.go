// Package flowcache implements the session table (Fig 1): cached
// bidirectional flows holding pre-actions, session state, or both,
// keyed by (VPC ID, normalized 5-tuple) for exact-match fast-path
// processing.
//
// The same structure serves three roles:
//
//   - a monolithic vSwitch stores pre-actions AND state per entry;
//   - a Nezha frontend (FE) stores pre-action-only entries — the
//     stateless "cached flows" that are safe to regenerate anywhere;
//   - a Nezha backend (BE) stores state-only entries — the single
//     local copy of session state.
//
// Every entry is charged to a byte budget, which is how the paper's
// "#concurrent flows limited by memory on fast path" bottleneck
// arises: when the budget is exhausted, inserts fail and new flows
// are dropped (an overload). Aging follows the state's FSM phase
// (short for establishing sessions, §7.3).
package flowcache

import (
	"errors"

	"nezha/internal/packet"
	"nezha/internal/state"
	"nezha/internal/tables"
)

// Per-entry memory footprints (bytes). A full entry is O(100B) as the
// paper reports: bidirectional 5-tuple + VPC + pre-actions + state.
const (
	EntryOverheadBytes = 64 // key, links, aging bookkeeping
	PreActionsBytes    = 64 // bidirectional pre-actions
)

// ErrNoMemory is returned when inserting would exceed the byte budget.
var ErrNoMemory = errors.New("flowcache: memory budget exhausted")

// Entry is one session's cached record.
type Entry struct {
	Key  packet.SessionKey
	VNIC uint32

	// HasPre marks cached pre-actions (fast-path rules result).
	HasPre bool
	Pre    tables.PreActions
	// PreVersion is the RuleSet version the pre-actions were derived
	// from; a version mismatch is treated as a miss and the entry is
	// regenerated (rule-table change invalidation, §3.2.2).
	PreVersion uint64

	// HasState marks locally maintained session state.
	HasState bool
	State    state.State

	// LastSeen is the last access time (ns), for aging.
	LastSeen int64
}

// SizeOf reports the bytes e occupies under this table's layout — the
// accounting the profiler uses to attribute session-table residency
// per vNIC at drain time.
func (t *Table) SizeOf(e *Entry) int {
	return e.sizeBytes(!t.cfg.VariableState)
}

func (e *Entry) sizeBytes(fixedState bool) int {
	n := EntryOverheadBytes
	if e.HasPre {
		n += PreActionsBytes
	}
	if e.HasState {
		if fixedState {
			n += state.FixedSizeBytes
		} else {
			n += e.State.EncodedSize()
		}
	}
	return n
}

// Config controls a table's budget and layout.
type Config struct {
	// MaxBytes is the memory budget; 0 means unlimited.
	MaxBytes int
	// VariableState stores states at their encoded size instead of
	// the fixed 64 B slot — the §7.1 "potential to increase
	// #concurrent flows" ablation.
	VariableState bool
}

// Table is the session table. Not safe for concurrent use; the
// simulation is single-threaded by design.
type Table struct {
	cfg     Config
	entries map[packet.SessionKey]*Entry
	mem     int

	// Counters for the experiments.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Rejects   uint64
}

// New returns an empty table.
func New(cfg Config) *Table {
	return &Table{cfg: cfg, entries: make(map[packet.SessionKey]*Entry)}
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// MemBytes returns the bytes currently charged.
func (t *Table) MemBytes() int { return t.mem }

// MaxBytes returns the configured budget (0 = unlimited).
func (t *Table) MaxBytes() int { return t.cfg.MaxBytes }

// SetMaxBytes adjusts the budget (offload/fallback resizes the
// partitions). Shrinking below current use does not evict eagerly;
// the next Sweep or insert pressure handles it.
func (t *Table) SetMaxBytes(n int) { t.cfg.MaxBytes = n }

// Lookup returns the entry for key, counting a hit or miss, and
// refreshes LastSeen on hit.
func (t *Table) Lookup(key packet.SessionKey, now int64) *Entry {
	e, ok := t.entries[key]
	if !ok {
		t.Misses++
		return nil
	}
	t.Hits++
	e.LastSeen = now
	return e
}

// Peek returns the entry without touching counters or LastSeen.
func (t *Table) Peek(key packet.SessionKey) *Entry { return t.entries[key] }

// GetOrCreate returns the existing entry or inserts an empty one,
// charging its overhead. It returns ErrNoMemory when the budget
// cannot fit a new entry.
func (t *Table) GetOrCreate(key packet.SessionKey, vnic uint32, now int64) (*Entry, error) {
	if e, ok := t.entries[key]; ok {
		e.LastSeen = now
		return e, nil
	}
	e := &Entry{Key: key, VNIC: vnic, LastSeen: now}
	sz := e.sizeBytes(!t.cfg.VariableState)
	if t.cfg.MaxBytes > 0 && t.mem+sz > t.cfg.MaxBytes {
		t.Rejects++
		return nil, ErrNoMemory
	}
	t.entries[key] = e
	t.mem += sz
	return e, nil
}

// mutate applies fn to e, re-charging its size delta. It returns
// ErrNoMemory (and rolls back) if growth would exceed the budget.
func (t *Table) mutate(e *Entry, fn func(*Entry)) error {
	before := e.sizeBytes(!t.cfg.VariableState)
	saved := *e
	fn(e)
	after := e.sizeBytes(!t.cfg.VariableState)
	if after > before && t.cfg.MaxBytes > 0 && t.mem+after-before > t.cfg.MaxBytes {
		*e = saved
		t.Rejects++
		return ErrNoMemory
	}
	t.mem += after - before
	return nil
}

// SetPre installs pre-actions (cached flow) on an entry.
func (t *Table) SetPre(e *Entry, pre tables.PreActions, version uint64) error {
	return t.mutate(e, func(e *Entry) {
		e.HasPre = true
		e.Pre = pre
		e.PreVersion = version
	})
}

// SetState installs or replaces the session state on an entry.
func (t *Table) SetState(e *Entry, s state.State) error {
	return t.mutate(e, func(e *Entry) {
		e.HasState = true
		e.State = s
	})
}

// TouchState advances the entry's state for one packet (FSM + stats),
// re-charging variable-size growth.
func (t *Table) TouchState(e *Entry, dir packet.Direction, flags packet.TCPFlags, payloadLen int, now int64) error {
	return t.mutate(e, func(e *Entry) {
		e.HasState = true
		e.State.Touch(dir, flags, payloadLen, now)
	})
}

// DropPre removes cached pre-actions from an entry, refunding their
// memory — the BE deletes its cached flows when entering the final
// offload stage while keeping the states (§4.2.1).
func (t *Table) DropPre(e *Entry) {
	if !e.HasPre {
		return
	}
	_ = t.mutate(e, func(e *Entry) {
		e.HasPre = false
		e.Pre = tables.PreActions{}
		e.PreVersion = 0
	})
}

// Delete removes an entry, refunding its memory.
func (t *Table) Delete(key packet.SessionKey) {
	e, ok := t.entries[key]
	if !ok {
		return
	}
	t.mem -= e.sizeBytes(!t.cfg.VariableState)
	delete(t.entries, key)
}

// InvalidateVNIC drops every entry belonging to vnic — used when a
// vNIC's rule tables are withdrawn from a node.
func (t *Table) InvalidateVNIC(vnic uint32) int {
	n := 0
	for k, e := range t.entries {
		if e.VNIC == vnic {
			t.mem -= e.sizeBytes(!t.cfg.VariableState)
			delete(t.entries, k)
			n++
		}
	}
	return n
}

// Clear drops everything.
func (t *Table) Clear() {
	t.entries = make(map[packet.SessionKey]*Entry)
	t.mem = 0
}

// idleAging is the eviction idle time for entries without state (FE
// cached flows age like established sessions).
const idleAging = state.AgingEstablished

// Sweep evicts expired entries at virtual time now and returns the
// eviction count. State-bearing entries age per their FSM phase
// (short SYN aging, §7.3); stateless cached flows use the idle aging.
func (t *Table) Sweep(now int64) int {
	n := 0
	for k, e := range t.entries {
		expired := false
		if e.HasState {
			expired = e.State.Expired(now)
		} else {
			expired = now-e.LastSeen > idleAging
		}
		if expired {
			t.mem -= e.sizeBytes(!t.cfg.VariableState)
			delete(t.entries, k)
			n++
		}
	}
	t.Evictions += uint64(n)
	return n
}

// Range iterates entries; fn returning false stops early.
func (t *Table) Range(fn func(*Entry) bool) {
	for _, e := range t.entries {
		if !fn(e) {
			return
		}
	}
}
