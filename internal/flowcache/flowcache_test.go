package flowcache

import (
	"testing"
	"testing/quick"

	"nezha/internal/packet"
	"nezha/internal/state"
	"nezha/internal/tables"
)

func key(n uint16) packet.SessionKey {
	ft := packet.FiveTuple{
		SrcIP: packet.MakeIP(10, 0, 0, 1), DstIP: packet.MakeIP(10, 0, 0, 2),
		SrcPort: n, DstPort: 80, Proto: packet.ProtoTCP,
	}
	k, _ := packet.SessionKeyOf(1, 7, ft)
	return k
}

func TestGetOrCreateAndLookup(t *testing.T) {
	tb := New(Config{})
	e, err := tb.GetOrCreate(key(1), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if e.VNIC != 3 || e.LastSeen != 100 {
		t.Fatalf("entry fields: %+v", e)
	}
	if tb.Len() != 1 {
		t.Fatal("len != 1")
	}
	got := tb.Lookup(key(1), 200)
	if got != e {
		t.Fatal("lookup returned different entry")
	}
	if got.LastSeen != 200 {
		t.Fatal("lookup did not refresh LastSeen")
	}
	if tb.Hits != 1 {
		t.Fatalf("hits = %d", tb.Hits)
	}
	if tb.Lookup(key(2), 0) != nil {
		t.Fatal("missing key returned entry")
	}
	if tb.Misses != 1 {
		t.Fatalf("misses = %d", tb.Misses)
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	tb := New(Config{})
	e1, _ := tb.GetOrCreate(key(1), 3, 1)
	e2, _ := tb.GetOrCreate(key(1), 3, 2)
	if e1 != e2 {
		t.Fatal("GetOrCreate created duplicate")
	}
	if tb.Len() != 1 {
		t.Fatal("duplicate entry")
	}
}

func TestMemoryAccounting(t *testing.T) {
	tb := New(Config{})
	if tb.MemBytes() != 0 {
		t.Fatal("fresh table has memory")
	}
	e, _ := tb.GetOrCreate(key(1), 3, 0)
	if tb.MemBytes() != EntryOverheadBytes {
		t.Fatalf("overhead-only entry = %d", tb.MemBytes())
	}
	if err := tb.SetPre(e, tables.PreActions{}, 1); err != nil {
		t.Fatal(err)
	}
	if tb.MemBytes() != EntryOverheadBytes+PreActionsBytes {
		t.Fatalf("with pre = %d", tb.MemBytes())
	}
	var s state.State
	s.InitFirst(packet.DirTX, 0)
	if err := tb.SetState(e, s); err != nil {
		t.Fatal(err)
	}
	want := EntryOverheadBytes + PreActionsBytes + state.FixedSizeBytes
	if tb.MemBytes() != want {
		t.Fatalf("full entry = %d, want %d", tb.MemBytes(), want)
	}
	tb.Delete(key(1))
	if tb.MemBytes() != 0 {
		t.Fatalf("after delete = %d", tb.MemBytes())
	}
}

func TestVariableStateSmaller(t *testing.T) {
	fixed := New(Config{})
	variable := New(Config{VariableState: true})
	var s state.State
	s.InitFirst(packet.DirTX, 0)
	for i, tb := range []*Table{fixed, variable} {
		e, _ := tb.GetOrCreate(key(1), 3, 0)
		if err := tb.SetState(e, s); err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
	}
	if variable.MemBytes() >= fixed.MemBytes() {
		t.Fatalf("variable (%d) should be smaller than fixed (%d)",
			variable.MemBytes(), fixed.MemBytes())
	}
}

func TestBudgetRejectsInsert(t *testing.T) {
	tb := New(Config{MaxBytes: EntryOverheadBytes}) // room for exactly one bare entry
	if _, err := tb.GetOrCreate(key(1), 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.GetOrCreate(key(2), 3, 0); err != ErrNoMemory {
		t.Fatalf("want ErrNoMemory, got %v", err)
	}
	if tb.Rejects != 1 {
		t.Fatalf("rejects = %d", tb.Rejects)
	}
	// Growth within an entry also respects the budget.
	e := tb.Peek(key(1))
	if err := tb.SetPre(e, tables.PreActions{}, 1); err != ErrNoMemory {
		t.Fatalf("SetPre should hit budget, got %v", err)
	}
	if e.HasPre {
		t.Fatal("failed SetPre mutated entry")
	}
	if tb.MemBytes() != EntryOverheadBytes {
		t.Fatal("failed mutation leaked memory")
	}
}

func TestBudgetExistingEntryStillAccessible(t *testing.T) {
	tb := New(Config{MaxBytes: EntryOverheadBytes})
	tb.GetOrCreate(key(1), 3, 0)
	if _, err := tb.GetOrCreate(key(1), 3, 5); err != nil {
		t.Fatal("existing entry should be returned even at budget")
	}
}

func TestTouchState(t *testing.T) {
	tb := New(Config{})
	e, _ := tb.GetOrCreate(key(1), 3, 0)
	if err := tb.TouchState(e, packet.DirTX, packet.FlagSYN, 0, 10); err != nil {
		t.Fatal(err)
	}
	if !e.HasState || e.State.TCP != state.TCPSynSent {
		t.Fatalf("state not advanced: %+v", e.State)
	}
	if tb.MemBytes() != EntryOverheadBytes+state.FixedSizeBytes {
		t.Fatalf("mem = %d", tb.MemBytes())
	}
}

func TestInvalidateVNIC(t *testing.T) {
	tb := New(Config{})
	tb.GetOrCreate(key(1), 3, 0)
	tb.GetOrCreate(key(2), 3, 0)
	tb.GetOrCreate(key(3), 4, 0)
	if n := tb.InvalidateVNIC(3); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	if tb.Peek(key(3)) == nil {
		t.Fatal("wrong vnic invalidated")
	}
}

func TestSweepAgesSynFasterThanEstablished(t *testing.T) {
	tb := New(Config{})
	eSyn, _ := tb.GetOrCreate(key(1), 3, 0)
	tb.TouchState(eSyn, packet.DirTX, packet.FlagSYN, 0, 0)
	eEst, _ := tb.GetOrCreate(key(2), 3, 0)
	tb.TouchState(eEst, packet.DirTX, packet.FlagSYN, 0, 0)
	tb.TouchState(eEst, packet.DirRX, packet.FlagSYN|packet.FlagACK, 0, 0)
	tb.TouchState(eEst, packet.DirTX, packet.FlagACK, 0, 0)

	// Just past the SYN aging: only the establishing session goes.
	n := tb.Sweep(state.AgingSyn + 1)
	if n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if tb.Peek(key(1)) != nil {
		t.Fatal("SYN entry survived")
	}
	if tb.Peek(key(2)) == nil {
		t.Fatal("established entry evicted early")
	}
	// Past the established aging: everything goes.
	n = tb.Sweep(state.AgingEstablished + 1)
	if n != 1 {
		t.Fatalf("second sweep %d, want 1", n)
	}
	if tb.Evictions != 2 {
		t.Fatalf("evictions = %d", tb.Evictions)
	}
}

func TestSweepStatelessEntries(t *testing.T) {
	tb := New(Config{})
	e, _ := tb.GetOrCreate(key(1), 3, 0)
	tb.SetPre(e, tables.PreActions{}, 1)
	if n := tb.Sweep(idleAging - 1); n != 0 {
		t.Fatal("stateless entry evicted too early")
	}
	if n := tb.Sweep(idleAging + 1); n != 1 {
		t.Fatal("stateless entry not evicted after idle aging")
	}
}

func TestSweepRefundsMemory(t *testing.T) {
	tb := New(Config{})
	for i := uint16(0); i < 10; i++ {
		e, _ := tb.GetOrCreate(key(i), 3, 0)
		tb.TouchState(e, packet.DirTX, packet.FlagSYN, 0, 0)
	}
	tb.Sweep(state.AgingSyn + 1)
	if tb.MemBytes() != 0 {
		t.Fatalf("memory leaked after sweep: %d", tb.MemBytes())
	}
}

func TestClear(t *testing.T) {
	tb := New(Config{})
	tb.GetOrCreate(key(1), 3, 0)
	tb.Clear()
	if tb.Len() != 0 || tb.MemBytes() != 0 {
		t.Fatal("clear incomplete")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := New(Config{})
	for i := uint16(0); i < 10; i++ {
		tb.GetOrCreate(key(i), 3, 0)
	}
	n := 0
	tb.Range(func(*Entry) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("range visited %d, want 3", n)
	}
}

func TestSetMaxBytes(t *testing.T) {
	tb := New(Config{})
	tb.GetOrCreate(key(1), 3, 0)
	tb.SetMaxBytes(1) // below current use
	if _, err := tb.GetOrCreate(key(2), 3, 0); err != ErrNoMemory {
		t.Fatal("shrunk budget should reject new entries")
	}
	if tb.Peek(key(1)) == nil {
		t.Fatal("existing entry must survive budget shrink")
	}
}

// Property: memory accounting equals the sum over live entries under
// any interleaving of operations.
func TestQuickMemoryConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(Config{})
		now := int64(0)
		for _, op := range ops {
			now++
			k := key(op % 16)
			switch op % 5 {
			case 0, 1:
				e, err := tb.GetOrCreate(k, uint32(op%3), now)
				if err == nil && op%2 == 0 {
					tb.TouchState(e, packet.DirTX, packet.FlagSYN, 0, now)
				}
			case 2:
				if e := tb.Peek(k); e != nil {
					tb.SetPre(e, tables.PreActions{}, 1)
				}
			case 3:
				tb.Delete(k)
			case 4:
				tb.Sweep(now)
			}
		}
		// Recompute from scratch.
		want := 0
		tb.Range(func(e *Entry) bool {
			want += e.sizeBytes(true)
			return true
		})
		return tb.MemBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tb := New(Config{})
	tb.GetOrCreate(key(1), 3, 0)
	k := key(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Lookup(k, int64(i))
	}
}

func BenchmarkGetOrCreate(b *testing.B) {
	tb := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.GetOrCreate(key(uint16(i)), 3, int64(i))
		if i%65536 == 65535 {
			tb.Clear()
		}
	}
}
