package flowcache

import (
	"math/rand"
	"testing"

	"nezha/internal/packet"
	"nezha/internal/state"
)

func keyFor(i int) packet.SessionKey {
	return packet.SessionKey{
		VNIC: uint32(1 + i%3),
		VPC:  7,
		Tuple: packet.FiveTuple{
			SrcIP: packet.IPv4(0x0a000000 + uint32(i)), DstIP: 0x0a000100 + packet.IPv4(i%5),
			SrcPort: uint16(1000 + i), DstPort: 80, Proto: packet.ProtoTCP,
		},
	}
}

// TestOpenAddrModel drives the open-addressed table against a plain
// map model through a long random op sequence: insert, delete,
// lookup, sweep-like bulk deletes, and clear. Backward-shift deletion
// must never strand an entry.
func TestOpenAddrModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := New(Config{})
	model := map[packet.SessionKey]uint32{}

	const keySpace = 300
	for op := 0; op < 20000; op++ {
		i := rng.Intn(keySpace)
		k := keyFor(i)
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert
			e, err := tab.GetOrCreate(k, k.VNIC, int64(op))
			if err != nil {
				t.Fatalf("op %d: GetOrCreate: %v", op, err)
			}
			if e.Key != k {
				t.Fatalf("op %d: wrong entry returned", op)
			}
			model[k] = k.VNIC
		case 4, 5: // delete
			tab.Delete(k)
			delete(model, k)
		case 6: // bulk delete one vNIC
			vnic := uint32(1 + rng.Intn(3))
			n := tab.InvalidateVNIC(vnic)
			want := 0
			for mk, mv := range model {
				if mv == vnic {
					delete(model, mk)
					want++
				}
			}
			if n != want {
				t.Fatalf("op %d: InvalidateVNIC(%d) = %d, want %d", op, vnic, n, want)
			}
		case 7: // occasional clear
			if rng.Intn(50) == 0 {
				tab.Clear()
				model = map[packet.SessionKey]uint32{}
			}
		default: // lookup
			got := tab.Peek(k)
			_, want := model[k]
			if (got != nil) != want {
				t.Fatalf("op %d: Peek(%v) present=%v, model=%v", op, k, got != nil, want)
			}
			if got != nil && got.Key != k {
				t.Fatalf("op %d: Peek returned wrong key", op)
			}
		}
		if tab.Len() != len(model) {
			t.Fatalf("op %d: Len=%d, model=%d", op, tab.Len(), len(model))
		}
	}
	// Every surviving model key must still probe.
	for k := range model {
		if tab.Peek(k) == nil {
			t.Fatalf("stranded key %v after op sequence", k)
		}
	}
	// Range must visit exactly the model set.
	seen := 0
	tab.Range(func(e *Entry) bool {
		if _, ok := model[e.Key]; !ok {
			t.Fatalf("Range visited deleted key %v", e.Key)
		}
		seen++
		return true
	})
	if seen != len(model) {
		t.Fatalf("Range visited %d entries, want %d", seen, len(model))
	}
}

// TestHashVariantsAgree pins the *H fast paths to their hashing
// wrappers.
func TestHashVariantsAgree(t *testing.T) {
	tab := New(Config{})
	k := keyFor(3)
	h := k.Hash()
	e, err := tab.GetOrCreateH(k, h, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tab.PeekH(k, h) != e || tab.Peek(k) != e {
		t.Fatal("PeekH/Peek disagree")
	}
	if tab.LookupH(k, h, 20) != e {
		t.Fatal("LookupH miss")
	}
	if e.LastSeen != 20 || tab.Hits != 1 {
		t.Fatalf("LookupH bookkeeping: LastSeen=%d Hits=%d", e.LastSeen, tab.Hits)
	}
}

// TestEntryRecycling checks deleted entries are reused and come back
// zeroed.
func TestEntryRecycling(t *testing.T) {
	tab := New(Config{})
	k1 := keyFor(1)
	e1, _ := tab.GetOrCreate(k1, 1, 5)
	var st state.State
	st.InitFirst(packet.DirTX, 5)
	if err := tab.SetState(e1, st); err != nil {
		t.Fatal(err)
	}
	tab.Delete(k1)
	k2 := keyFor(2)
	e2, _ := tab.GetOrCreate(k2, 2, 6)
	if e2 != e1 {
		t.Fatal("expected freelist reuse")
	}
	if e2.HasState || e2.HasPre || e2.Key != k2 || e2.VNIC != 2 {
		t.Fatalf("recycled entry not reset: %+v", e2)
	}
	if tab.MemBytes() != EntryOverheadBytes {
		t.Fatalf("mem = %d, want %d", tab.MemBytes(), EntryOverheadBytes)
	}
}
