// Package journal is the controller's write-ahead log: every control
// plane mutation — committed per-vNIC placements and epochs, two-phase
// transaction intents and their resolutions, node health transitions,
// parked FE removals, and policy cooldown state — is appended as one
// deterministic record before (or atomically with) the in-memory
// mutation it describes. A crashed controller rebuilds its entire
// world from snapshot + tail and then reconciles against the live
// agents; nothing the controller knows is allowed to live only in RAM.
//
// The journal is layered over a Store that holds encoded lines:
// MemStore backs deterministic simulation (a crash "loses" the process
// but the store survives, exactly like a file on disk would), and
// FileStore is the real thing for live mode. Records are JSON-encoded
// structs with a fixed field order, so identical mutation sequences
// produce byte-identical journals — the same determinism contract the
// rest of the simulator keeps.
//
// Growth is bounded by periodic snapshots: every SnapshotEvery appends
// the journal asks its registered compactors for the minimal record
// set describing current state, writes it as the new snapshot, and
// truncates the tail. Replay is snapshot records followed by tail
// records, in append order; all record applications are idempotent
// full-state overwrites, so replaying a snapshot that already includes
// later tail records is harmless.
package journal

import (
	"encoding/json"
	"fmt"

	"nezha/internal/packet"
)

// Kind enumerates record types.
type Kind uint8

// Record kinds.
const (
	// KindPlacement is a committed per-vNIC placement: epoch, offload
	// state, FE pool. Written at every commit/abort resolution and at
	// every non-transactional epoch bump (pool repair pushes, scale-in,
	// failover evictions). Full-state overwrite: the latest placement
	// record for a vNIC wins.
	KindPlacement Kind = iota + 1
	// KindIntent is a two-phase transaction intent, written at prepare
	// time before the first InstallFE leaves the controller. An intent
	// with no matching KindResolve at replay time is exactly the
	// "prepared but unresolved" state recovery must reconcile.
	KindIntent
	// KindResolve closes the vNIC's open intent: Committed reports
	// whether the transaction committed (gateway flip pushed) or
	// aborted (targets rolled back).
	KindResolve
	// KindNode records a node health transition (Down true/false), so
	// recovery does not have to rediscover pre-crash failures from the
	// monitor.
	KindNode
	// KindRemoval tracks a parked FE-table removal: Done=false when the
	// removal is deferred (learner horizon, unreachable FE), Done=true
	// when the RemoveFE finally acked. Replay rebuilds the retry set.
	KindRemoval
	// KindPolicy is the policy engine's per-vNIC cooldown/sustain
	// state, appended after every actuated decision so a recovered
	// controller resumes hysteresis where the dead one left off.
	KindPolicy
)

func (k Kind) String() string {
	switch k {
	case KindPlacement:
		return "placement"
	case KindIntent:
		return "intent"
	case KindResolve:
		return "resolve"
	case KindNode:
		return "node"
	case KindRemoval:
		return "removal"
	case KindPolicy:
		return "policy"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Txn kinds mirrored from the controller (the journal package must not
// import it).
const (
	TxnOffload uint8 = iota + 1
	TxnScaleOut
	TxnFallback
)

// Record is one journal entry. Which fields matter depends on Kind;
// unused fields stay zero and are omitted from the encoding. Times are
// sim.Time ticks stored as int64 so the package stays import-light.
type Record struct {
	Kind  Kind   `json:"k"`
	VNIC  uint32 `json:"v,omitempty"`
	Epoch uint64 `json:"e,omitempty"`
	// Txn is the transaction kind for intents (TxnOffload, ...).
	Txn uint8 `json:"x,omitempty"`
	// Committed reports commit vs abort on KindResolve.
	Committed bool `json:"c,omitempty"`
	// Offloaded / Pinned / FEs describe a placement (and the policy
	// view's offload state on KindPolicy).
	Offloaded bool          `json:"o,omitempty"`
	Pinned    bool          `json:"p,omitempty"`
	FEs       []packet.IPv4 `json:"f,omitempty"`
	// Stale is the placement's pending-rollback FE set (installs that
	// must be reconciled away before the vNIC can transact again).
	Stale []packet.IPv4 `json:"st,omitempty"`
	// Node is the subject of KindNode and KindRemoval records.
	Node packet.IPv4 `json:"n,omitempty"`
	Down bool        `json:"d,omitempty"`
	// Done closes a KindRemoval.
	Done bool `json:"dn,omitempty"`
	// RetryAt / LastScale are placement cooldown stamps; LastFlip and
	// the Flipped/Scaled bits are the policy cooldown stamps; Pool is
	// the policy's virtual pool size.
	RetryAt   int64 `json:"r,omitempty"`
	LastScale int64 `json:"ls,omitempty"`
	LastFlip  int64 `json:"lf,omitempty"`
	Flipped   bool  `json:"fl,omitempty"`
	Scaled    bool  `json:"sc,omitempty"`
	Pool      int   `json:"pl,omitempty"`
}

// Store is the durable layer under a Journal. It deals in encoded
// lines so implementations stay oblivious to record semantics.
type Store interface {
	// Append adds one encoded record to the tail.
	Append(line []byte) error
	// Snapshot atomically replaces the durable state with the given
	// snapshot lines and an empty tail.
	Snapshot(lines [][]byte) error
	// Load returns the current snapshot and tail lines.
	Load() (snap, tail [][]byte, err error)
	// SizeBytes is the durable footprint (snapshot + tail).
	SizeBytes() int64
}

// Stats counts journal activity.
type Stats struct {
	Appends   uint64
	Snapshots uint64
	Replays   uint64
	Errors    uint64
}

// Journal encodes records onto a Store and snapshots periodically.
type Journal struct {
	store      Store
	snapEvery  int
	sinceSnap  int
	compactors []func() []Record

	Stats Stats
}

// DefaultSnapshotEvery is the append count between snapshots.
const DefaultSnapshotEvery = 256

// New wraps a store. snapEvery <= 0 uses DefaultSnapshotEvery.
func New(store Store, snapEvery int) *Journal {
	if snapEvery <= 0 {
		snapEvery = DefaultSnapshotEvery
	}
	return &Journal{store: store, snapEvery: snapEvery}
}

// NewMem is the sim-mode convenience: a journal over a fresh MemStore.
func NewMem() *Journal { return New(NewMemStore(), 0) }

// AddCompactor registers a provider of current-state records. At
// snapshot time the journal concatenates every compactor's output (in
// registration order) into the new snapshot. The controller registers
// one for placements/intents/nodes/removals; the policy loop registers
// one for its cooldown tracks.
func (j *Journal) AddCompactor(fn func() []Record) {
	j.compactors = append(j.compactors, fn)
}

// Append encodes and durably appends one record, snapshotting when the
// tail has grown past the snapshot interval. Store errors are counted
// and returned but leave the journal usable — a controller with a
// sick disk keeps flying on its in-memory state.
func (j *Journal) Append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		j.Stats.Errors++
		return err
	}
	if err := j.store.Append(line); err != nil {
		j.Stats.Errors++
		return err
	}
	j.Stats.Appends++
	j.sinceSnap++
	if j.sinceSnap >= j.snapEvery && len(j.compactors) > 0 {
		return j.Compact()
	}
	return nil
}

// Compact writes a fresh snapshot from the registered compactors and
// truncates the tail.
func (j *Journal) Compact() error {
	var lines [][]byte
	for _, fn := range j.compactors {
		for _, r := range fn() {
			line, err := json.Marshal(r)
			if err != nil {
				j.Stats.Errors++
				return err
			}
			lines = append(lines, line)
		}
	}
	if err := j.store.Snapshot(lines); err != nil {
		j.Stats.Errors++
		return err
	}
	j.Stats.Snapshots++
	j.sinceSnap = 0
	return nil
}

// Replay decodes snapshot + tail in append order. A truncated or
// corrupt trailing line (torn write at crash time) ends the replay
// silently; a corrupt line in the middle is an error.
func (j *Journal) Replay() ([]Record, error) {
	snap, tail, err := j.store.Load()
	if err != nil {
		j.Stats.Errors++
		return nil, err
	}
	all := make([]Record, 0, len(snap)+len(tail))
	for seg, lines := range [][][]byte{snap, tail} {
		for i, line := range lines {
			var r Record
			if err := json.Unmarshal(line, &r); err != nil {
				if seg == 1 && i == len(lines)-1 {
					// Torn tail write: the record never became durable.
					break
				}
				j.Stats.Errors++
				return nil, fmt.Errorf("journal: corrupt record %d: %w", i, err)
			}
			all = append(all, r)
		}
	}
	j.Stats.Replays++
	return all, nil
}

// SizeBytes is the durable footprint.
func (j *Journal) SizeBytes() int64 { return j.store.SizeBytes() }

// MemStore is the simulation store: encoded lines in memory. A
// controller "crash" abandons the process state; the MemStore plays
// the role of the disk that survives it.
type MemStore struct {
	snap [][]byte
	tail [][]byte
	size int64
}

// NewMemStore builds an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append adds a line to the tail.
func (m *MemStore) Append(line []byte) error {
	cp := make([]byte, len(line))
	copy(cp, line)
	m.tail = append(m.tail, cp)
	m.size += int64(len(line)) + 1
	return nil
}

// Snapshot replaces snapshot + tail.
func (m *MemStore) Snapshot(lines [][]byte) error {
	m.snap = make([][]byte, len(lines))
	m.size = 0
	for i, line := range lines {
		cp := make([]byte, len(line))
		copy(cp, line)
		m.snap[i] = cp
		m.size += int64(len(line)) + 1
	}
	m.tail = nil
	return nil
}

// Load returns the stored lines.
func (m *MemStore) Load() (snap, tail [][]byte, err error) {
	return m.snap, m.tail, nil
}

// SizeBytes is the stored byte count (with newline framing).
func (m *MemStore) SizeBytes() int64 { return m.size }
