package journal

import (
	"bytes"
	"nezha/internal/packet"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func placement(vnic uint32, epoch uint64, off bool) Record {
	return Record{Kind: KindPlacement, VNIC: vnic, Epoch: epoch, Offloaded: off}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	j := NewMem()
	recs := []Record{
		{Kind: KindIntent, VNIC: 100, Epoch: 3, Txn: TxnOffload, FEs: []packet.IPv4{1, 2, 3}},
		{Kind: KindResolve, VNIC: 100, Epoch: 3, Committed: true, FEs: []packet.IPv4{1, 2}},
		placement(100, 3, true),
		{Kind: KindNode, Node: 7, Down: true},
		{Kind: KindRemoval, Node: 2, VNIC: 100, Epoch: 4},
		{Kind: KindPolicy, VNIC: 100, Offloaded: true, Pool: 4, LastFlip: 1500, Flipped: true},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay mismatch:\nwant %+v\ngot  %+v", recs, got)
	}
	if j.SizeBytes() == 0 {
		t.Fatal("SizeBytes reported empty journal")
	}
}

// TestDeterministicEncoding pins the byte-stability contract: the same
// record must encode identically every time (the chaos digest and the
// replay-equality tests both lean on it).
func TestDeterministicEncoding(t *testing.T) {
	j1, j2 := NewMem(), NewMem()
	r := Record{Kind: KindIntent, VNIC: 42, Epoch: 9, Txn: TxnScaleOut, FEs: []packet.IPv4{5, 6}}
	if err := j1.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(r); err != nil {
		t.Fatal(err)
	}
	m1 := j1.store.(*MemStore)
	m2 := j2.store.(*MemStore)
	if !bytes.Equal(m1.tail[0], m2.tail[0]) {
		t.Fatalf("encoding not deterministic: %s vs %s", m1.tail[0], m2.tail[0])
	}
}

// TestSnapshotTruncates drives enough appends to cross the snapshot
// interval and checks the tail is replaced by the compactor's view.
func TestSnapshotTruncates(t *testing.T) {
	j := New(NewMemStore(), 8)
	state := placement(1, 0, false)
	j.AddCompactor(func() []Record { return []Record{state} })
	for i := 1; i <= 20; i++ {
		state = placement(1, uint64(i), i%2 == 0)
		if err := j.Append(state); err != nil {
			t.Fatal(err)
		}
	}
	if j.Stats.Snapshots == 0 {
		t.Fatal("no snapshot after crossing the interval")
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	// The last record applied must still describe the final state.
	last := got[len(got)-1]
	if last.Epoch != 20 {
		t.Fatalf("replay tail lost the latest state: %+v", last)
	}
	ms := j.store.(*MemStore)
	if len(ms.tail) >= 20 {
		t.Fatalf("snapshot never truncated the tail: %d lines", len(ms.tail))
	}
}

func TestFileStoreReload(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := New(fs, 4)
	j.AddCompactor(func() []Record { return []Record{placement(9, 99, true)} })
	var want []Record
	for i := 0; i < 10; i++ {
		r := placement(9, uint64(90+i), true)
		want = append(want, r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process reopens the same directory and replays.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	j2 := New(fs2, 4)
	got, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("reload replayed nothing")
	}
	last := got[len(got)-1]
	if !reflect.DeepEqual(last, want[len(want)-1]) {
		t.Fatalf("reload lost the latest record: %+v", last)
	}
	if j2.SizeBytes() == 0 {
		t.Fatal("reloaded store reports zero size")
	}
}

// TestTornTailTolerated cuts the wal mid-record: replay must stop at
// the torn line instead of erroring (the record never became durable).
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := New(fs, 1000)
	for i := 0; i < 3; i++ {
		if err := j.Append(placement(1, uint64(i+1), false)); err != nil {
			t.Fatal(err)
		}
	}
	fs.Close()
	wal := filepath.Join(dir, "wal.jsonl")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the trailing newline plus a few bytes: a torn final record.
	if err := os.WriteFile(wal, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := New(fs2, 1000).Replay()
	if err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 intact records, got %d", len(got))
	}
}
