package journal

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
)

// FileStore is the live-mode store: a snapshot file plus a wal file of
// newline-framed records under one directory. Appends are synchronous
// line writes; Snapshot writes a temp file and renames it over the old
// snapshot before truncating the wal, so a crash between the two
// leaves either the old (snapshot, wal) pair or the new snapshot with
// a stale-but-idempotent wal — both replay to the same state because
// record application is a full-state overwrite.
type FileStore struct {
	dir  string
	wal  *os.File
	size int64
}

const (
	snapName = "snapshot.jsonl"
	walName  = "wal.jsonl"
)

// NewFileStore opens (or creates) a journal directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{dir: dir, wal: f}
	fs.size = fs.diskSize()
	return fs, nil
}

// Close releases the wal handle.
func (fs *FileStore) Close() error { return fs.wal.Close() }

// Dir returns the journal directory.
func (fs *FileStore) Dir() string { return fs.dir }

// Append writes one framed line to the wal.
func (fs *FileStore) Append(line []byte) error {
	if _, err := fs.wal.Write(append(line, '\n')); err != nil {
		return err
	}
	fs.size += int64(len(line)) + 1
	return nil
}

// Snapshot writes the new snapshot atomically and truncates the wal.
func (fs *FileStore) Snapshot(lines [][]byte) error {
	tmp := filepath.Join(fs.dir, snapName+".tmp")
	var buf bytes.Buffer
	for _, line := range lines {
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(fs.dir, snapName)); err != nil {
		return err
	}
	if err := fs.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := fs.wal.Seek(0, 0); err != nil {
		return err
	}
	fs.size = int64(buf.Len())
	return nil
}

// Load reads snapshot and wal lines.
func (fs *FileStore) Load() (snap, tail [][]byte, err error) {
	snap, err = readLines(filepath.Join(fs.dir, snapName))
	if err != nil {
		return nil, nil, err
	}
	tail, err = readLines(filepath.Join(fs.dir, walName))
	if err != nil {
		return nil, nil, err
	}
	return snap, tail, nil
}

// SizeBytes is the durable footprint.
func (fs *FileStore) SizeBytes() int64 { return fs.size }

func (fs *FileStore) diskSize() int64 {
	var n int64
	for _, name := range []string{snapName, walName} {
		if st, err := os.Stat(filepath.Join(fs.dir, name)); err == nil {
			n += st.Size()
		}
	}
	return n
}

func readLines(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines [][]byte
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines = append(lines, line)
	}
	return lines, sc.Err()
}
