package ctrlrpc

import (
	"fmt"

	"nezha/internal/fabric"
	"nezha/internal/nic"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/vswitch"
)

// AgentStats counts agent-side RPC handling.
type AgentStats struct {
	Handled    uint64 // first-time requests accepted
	Duplicates uint64 // retransmits deduplicated by request ID
	Applied    uint64 // applies that ran to completion
	Crashed    uint64 // applies abandoned because the vSwitch crashed
	// DupSideEffects counts side-effectful ops applied twice for the
	// same (op, vnic, epoch) under *different* request IDs — the
	// signature of a recovered controller re-issuing work its journal
	// already resolved. Same-ID retransmits are normal at-least-once
	// delivery and do not count.
	DupSideEffects uint64
}

// appKey identifies one logical side effect for duplicate detection.
type appKey struct {
	op    Op
	vnic  uint32
	epoch uint64
}

// noteEffect records a successful side-effectful apply and flags
// replays: a second distinct request ID for the same key means the
// effect ran twice.
func noteEffect(applied map[appKey]uint64, st *AgentStats, op Op, vnic uint32, epoch uint64, id uint64) {
	k := appKey{op: op, vnic: vnic, epoch: epoch}
	if first, ok := applied[k]; ok {
		if first != id {
			st.DupSideEffects++
		}
		return
	}
	applied[k] = id
}

// pendingApply tracks one request through its apply delay, so
// duplicate retransmits neither re-apply nor ack early.
type pendingApply struct {
	from packet.IPv4
	done bool
}

// Agent is the per-vSwitch management endpoint: it receives control
// packets on CtrlPort, applies them against the vSwitch after the
// request's ApplyDelay (the local config-programming time), and acks
// back over the fabric. Requests are deduplicated by ID; an applied
// duplicate re-acks immediately, an in-flight duplicate is ignored
// (its ack follows when the apply completes). If the vSwitch crashes
// before the apply fires, the request is forgotten — a retransmit
// landing after revival applies cleanly.
type Agent struct {
	loop    *sim.Loop
	fab     *fabric.Fabric
	t       *Transport
	vs      *vswitch.VSwitch
	seen    map[uint64]*pendingApply
	applied map[appKey]uint64

	Stats AgentStats
}

// NewAgent wires an agent to a vSwitch's control handler.
func NewAgent(loop *sim.Loop, fab *fabric.Fabric, t *Transport, vs *vswitch.VSwitch) *Agent {
	a := &Agent{loop: loop, fab: fab, t: t, vs: vs,
		seen: make(map[uint64]*pendingApply), applied: make(map[appKey]uint64)}
	vs.SetControlHandler(a.handle)
	return a
}

func (a *Agent) handle(p *packet.Packet) {
	id := p.ID
	if st, ok := a.seen[id]; ok {
		a.Stats.Duplicates++
		if st.done {
			a.ack(st.from, id)
		}
		return
	}
	req, from, ok := a.t.Body(id)
	if !ok {
		return // caller already gave up on this request
	}
	a.Stats.Handled++
	st := &pendingApply{from: from}
	a.seen[id] = st
	a.loop.Schedule(req.ApplyDelay, func() {
		if a.vs.Crashed() {
			// Died mid-programming: the config never took. Forget the
			// request so a post-revival retransmit applies fresh.
			delete(a.seen, id)
			a.Stats.Crashed++
			return
		}
		st.done = true
		a.Stats.Applied++
		a.vs.ProfCtrl(req.VNIC, nic.CtrlApplyCycles)
		if req.Op == OpQueryVNIC {
			a.t.SetReply(id, a.queryVNIC(req.VNIC))
			a.t.Verdict(id, nil)
		} else {
			err := a.apply(req)
			if err == nil && (req.Op == OpInstallFE || req.Op == OpOffloadStart) {
				noteEffect(a.applied, &a.Stats, req.Op, req.VNIC, req.Epoch, id)
			}
			a.t.Verdict(id, err)
		}
		a.ack(from, id)
	})
}

// queryVNIC snapshots the vSwitch's installed state for one vNIC: the
// home-side config (FE-set epoch, offload flag) and any hosted FE
// instance. Recovery reconciles the journal against this.
func (a *Agent) queryVNIC(vnic uint32) *Reply {
	rep := &Reply{
		Epoch:     a.vs.FESetEpoch(vnic),
		Resident:  a.vs.HasVNIC(vnic),
		Offloaded: a.vs.Offloaded(vnic),
	}
	if ep, ok := a.vs.FEEpoch(vnic); ok {
		rep.HasFE = true
		rep.FEEpoch = ep
	}
	return rep
}

// apply executes one operation against the vSwitch.
func (a *Agent) apply(req *Request) error {
	switch req.Op {
	case OpInstallFE:
		return a.vs.InstallFEEpoch(req.Rules, req.BE, req.Decap, req.Epoch)
	case OpRemoveFE:
		a.vs.RemoveFEEpoch(req.VNIC, req.Epoch)
		return nil
	case OpSetFEs:
		return a.vs.SetFEsEpoch(req.VNIC, req.FEs, req.Epoch)
	case OpOffloadStart:
		return a.vs.OffloadStartEpoch(req.VNIC, req.FEs, req.Epoch)
	case OpOffloadAbort:
		return a.vs.OffloadAbort(req.VNIC)
	case OpOffloadFinalize:
		return a.vs.OffloadFinalize(req.VNIC)
	case OpFallbackStart:
		return a.vs.FallbackStart(req.VNIC, req.Rules)
	case OpFallbackFinalize:
		return a.vs.FallbackFinalize(req.VNIC)
	default:
		return fmt.Errorf("ctrlrpc: agent cannot apply op %v", req.Op)
	}
}

// ack sends the reply packet. Like the vSwitch's probe pongs, it is a
// fresh packet accounted by the fabric ledger.
func (a *Agent) ack(to packet.IPv4, id uint64) {
	p := packet.New(id, 0, 0, packet.FiveTuple{
		SrcIP: a.vs.Addr(), DstIP: to,
		SrcPort: vswitch.CtrlPort, DstPort: ctrlClientPort,
		Proto: packet.ProtoUDP,
	}, packet.DirTX, 0, 16)
	p.SentAt = int64(a.loop.Now())
	p.Encap(a.vs.Addr(), to)
	a.fab.Send(a.vs.Addr(), to, p)
}

// GatewayAgent is the gateway's management endpoint: OpGatewaySet
// requests update the global routing table, with the same dedup and
// epoch discipline as vSwitch agents. The gateway itself never
// crashes in this model, but the fabric between controller and
// gateway can still lose or delay the request and the ack.
type GatewayAgent struct {
	loop    *sim.Loop
	fab     *fabric.Fabric
	t       *Transport
	gw      *fabric.Gateway
	addr    packet.IPv4
	seen    map[uint64]*pendingApply
	applied map[appKey]uint64

	Stats AgentStats
}

// NewGatewayAgent registers a gateway agent at addr on the fabric.
func NewGatewayAgent(loop *sim.Loop, fab *fabric.Fabric, t *Transport, gw *fabric.Gateway, addr packet.IPv4) *GatewayAgent {
	ga := &GatewayAgent{loop: loop, fab: fab, t: t, gw: gw, addr: addr,
		seen: make(map[uint64]*pendingApply), applied: make(map[appKey]uint64)}
	fab.Register(addr, -1, ga.handle)
	return ga
}

// Addr returns the gateway agent's fabric address.
func (ga *GatewayAgent) Addr() packet.IPv4 { return ga.addr }

func (ga *GatewayAgent) handle(p *packet.Packet) {
	id := p.ID
	if st, ok := ga.seen[id]; ok {
		ga.Stats.Duplicates++
		if st.done {
			ga.ack(st.from, id)
		}
		return
	}
	req, from, ok := ga.t.Body(id)
	if !ok {
		return
	}
	ga.Stats.Handled++
	st := &pendingApply{from: from}
	ga.seen[id] = st
	ga.loop.Schedule(req.ApplyDelay, func() {
		st.done = true
		ga.Stats.Applied++
		var err error
		switch req.Op {
		case OpGatewaySet:
			err = ga.gw.SetEpoch(req.VNIC, req.Epoch, req.FEs...)
			if err == nil {
				noteEffect(ga.applied, &ga.Stats, req.Op, req.VNIC, req.Epoch, id)
			}
		case OpQueryGateway:
			rep := &Reply{Epoch: ga.gw.Epoch(req.VNIC)}
			if addrs, ok := ga.gw.Lookup(req.VNIC); ok {
				rep.Resident = true
				rep.Addrs = append([]packet.IPv4(nil), addrs...)
			}
			ga.t.SetReply(id, rep)
		default:
			err = fmt.Errorf("ctrlrpc: gateway cannot apply op %v", req.Op)
		}
		ga.t.Verdict(id, err)
		ga.ack(from, id)
	})
}

func (ga *GatewayAgent) ack(to packet.IPv4, id uint64) {
	p := packet.New(id, 0, 0, packet.FiveTuple{
		SrcIP: ga.addr, DstIP: to,
		SrcPort: vswitch.CtrlPort, DstPort: ctrlClientPort,
		Proto: packet.ProtoUDP,
	}, packet.DirTX, 0, 16)
	p.SentAt = int64(ga.loop.Now())
	p.Encap(ga.addr, to)
	ga.fab.Send(ga.addr, to, p)
}
