package ctrlrpc

import (
	"fmt"

	"nezha/internal/fabric"
	"nezha/internal/nic"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/vswitch"
)

// AgentStats counts agent-side RPC handling.
type AgentStats struct {
	Handled    uint64 // first-time requests accepted
	Duplicates uint64 // retransmits deduplicated by request ID
	Applied    uint64 // applies that ran to completion
	Crashed    uint64 // applies abandoned because the vSwitch crashed
}

// pendingApply tracks one request through its apply delay, so
// duplicate retransmits neither re-apply nor ack early.
type pendingApply struct {
	from packet.IPv4
	done bool
}

// Agent is the per-vSwitch management endpoint: it receives control
// packets on CtrlPort, applies them against the vSwitch after the
// request's ApplyDelay (the local config-programming time), and acks
// back over the fabric. Requests are deduplicated by ID; an applied
// duplicate re-acks immediately, an in-flight duplicate is ignored
// (its ack follows when the apply completes). If the vSwitch crashes
// before the apply fires, the request is forgotten — a retransmit
// landing after revival applies cleanly.
type Agent struct {
	loop *sim.Loop
	fab  *fabric.Fabric
	t    *Transport
	vs   *vswitch.VSwitch
	seen map[uint64]*pendingApply

	Stats AgentStats
}

// NewAgent wires an agent to a vSwitch's control handler.
func NewAgent(loop *sim.Loop, fab *fabric.Fabric, t *Transport, vs *vswitch.VSwitch) *Agent {
	a := &Agent{loop: loop, fab: fab, t: t, vs: vs, seen: make(map[uint64]*pendingApply)}
	vs.SetControlHandler(a.handle)
	return a
}

func (a *Agent) handle(p *packet.Packet) {
	id := p.ID
	if st, ok := a.seen[id]; ok {
		a.Stats.Duplicates++
		if st.done {
			a.ack(st.from, id)
		}
		return
	}
	req, from, ok := a.t.Body(id)
	if !ok {
		return // caller already gave up on this request
	}
	a.Stats.Handled++
	st := &pendingApply{from: from}
	a.seen[id] = st
	a.loop.Schedule(req.ApplyDelay, func() {
		if a.vs.Crashed() {
			// Died mid-programming: the config never took. Forget the
			// request so a post-revival retransmit applies fresh.
			delete(a.seen, id)
			a.Stats.Crashed++
			return
		}
		st.done = true
		a.Stats.Applied++
		a.vs.ProfCtrl(req.VNIC, nic.CtrlApplyCycles)
		a.t.Verdict(id, a.apply(req))
		a.ack(from, id)
	})
}

// apply executes one operation against the vSwitch.
func (a *Agent) apply(req *Request) error {
	switch req.Op {
	case OpInstallFE:
		return a.vs.InstallFEEpoch(req.Rules, req.BE, req.Decap, req.Epoch)
	case OpRemoveFE:
		a.vs.RemoveFEEpoch(req.VNIC, req.Epoch)
		return nil
	case OpSetFEs:
		return a.vs.SetFEsEpoch(req.VNIC, req.FEs, req.Epoch)
	case OpOffloadStart:
		return a.vs.OffloadStartEpoch(req.VNIC, req.FEs, req.Epoch)
	case OpOffloadAbort:
		return a.vs.OffloadAbort(req.VNIC)
	case OpOffloadFinalize:
		return a.vs.OffloadFinalize(req.VNIC)
	case OpFallbackStart:
		return a.vs.FallbackStart(req.VNIC, req.Rules)
	case OpFallbackFinalize:
		return a.vs.FallbackFinalize(req.VNIC)
	default:
		return fmt.Errorf("ctrlrpc: agent cannot apply op %v", req.Op)
	}
}

// ack sends the reply packet. Like the vSwitch's probe pongs, it is a
// fresh packet accounted by the fabric ledger.
func (a *Agent) ack(to packet.IPv4, id uint64) {
	p := packet.New(id, 0, 0, packet.FiveTuple{
		SrcIP: a.vs.Addr(), DstIP: to,
		SrcPort: vswitch.CtrlPort, DstPort: ctrlClientPort,
		Proto: packet.ProtoUDP,
	}, packet.DirTX, 0, 16)
	p.SentAt = int64(a.loop.Now())
	p.Encap(a.vs.Addr(), to)
	a.fab.Send(a.vs.Addr(), to, p)
}

// GatewayAgent is the gateway's management endpoint: OpGatewaySet
// requests update the global routing table, with the same dedup and
// epoch discipline as vSwitch agents. The gateway itself never
// crashes in this model, but the fabric between controller and
// gateway can still lose or delay the request and the ack.
type GatewayAgent struct {
	loop *sim.Loop
	fab  *fabric.Fabric
	t    *Transport
	gw   *fabric.Gateway
	addr packet.IPv4
	seen map[uint64]*pendingApply

	Stats AgentStats
}

// NewGatewayAgent registers a gateway agent at addr on the fabric.
func NewGatewayAgent(loop *sim.Loop, fab *fabric.Fabric, t *Transport, gw *fabric.Gateway, addr packet.IPv4) *GatewayAgent {
	ga := &GatewayAgent{loop: loop, fab: fab, t: t, gw: gw, addr: addr, seen: make(map[uint64]*pendingApply)}
	fab.Register(addr, -1, ga.handle)
	return ga
}

// Addr returns the gateway agent's fabric address.
func (ga *GatewayAgent) Addr() packet.IPv4 { return ga.addr }

func (ga *GatewayAgent) handle(p *packet.Packet) {
	id := p.ID
	if st, ok := ga.seen[id]; ok {
		ga.Stats.Duplicates++
		if st.done {
			ga.ack(st.from, id)
		}
		return
	}
	req, from, ok := ga.t.Body(id)
	if !ok {
		return
	}
	ga.Stats.Handled++
	st := &pendingApply{from: from}
	ga.seen[id] = st
	ga.loop.Schedule(req.ApplyDelay, func() {
		st.done = true
		ga.Stats.Applied++
		var err error
		if req.Op == OpGatewaySet {
			err = ga.gw.SetEpoch(req.VNIC, req.Epoch, req.FEs...)
		} else {
			err = fmt.Errorf("ctrlrpc: gateway cannot apply op %v", req.Op)
		}
		ga.t.Verdict(id, err)
		ga.ack(from, id)
	})
}

func (ga *GatewayAgent) ack(to packet.IPv4, id uint64) {
	p := packet.New(id, 0, 0, packet.FiveTuple{
		SrcIP: ga.addr, DstIP: to,
		SrcPort: vswitch.CtrlPort, DstPort: ctrlClientPort,
		Proto: packet.ProtoUDP,
	}, packet.DirTX, 0, 16)
	p.SentAt = int64(ga.loop.Now())
	p.Encap(ga.addr, to)
	ga.fab.Send(ga.addr, to, p)
}
