// Package ctrlrpc is the transactional control-plane transport: every
// controller mutation (InstallFE, SetFEs, OffloadStart, gateway
// updates, ...) travels as a fabric packet to the target vSwitch's
// management agent and must be acknowledged back. Because requests and
// acks ride the same fabric as data traffic, chaos loss, jitter, and
// partitions apply to config pushes exactly as the paper's §4.2
// workflow must survive them.
//
// Delivery semantics are at-least-once with idempotent receivers: a
// request that is not acked within its per-attempt timeout is
// retransmitted with exponential backoff and jitter, up to a bounded
// attempt budget, after which the call fails at the caller. Agents
// deduplicate by request ID, so a retry whose predecessor was applied
// (but whose ack was lost) re-acks without re-applying. Every config
// payload carries the vNIC's monotonically increasing epoch; the
// vSwitch and gateway reject pushes older than their installed config,
// so stale or reordered retries can never regress newer state.
//
// Modeling note: like the fabric's wire mode, only packet identity and
// timing ride the wire. Request bodies (rule-table pointers are not
// serializable) and verdicts are kept in per-transport side registries
// keyed by request ID; the fabric decides whether and when a message
// arrives, the registry says what it meant.
package ctrlrpc

import (
	"errors"
	"fmt"

	"nezha/internal/fabric"
	"nezha/internal/obs"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
)

// Op enumerates control-plane request types.
type Op int

// Control operations.
const (
	OpInstallFE Op = iota
	OpRemoveFE
	OpSetFEs
	OpOffloadStart
	OpOffloadAbort
	OpOffloadFinalize
	OpFallbackStart
	OpFallbackFinalize
	OpGatewaySet
	// OpQueryVNIC asks a vSwitch agent for its installed state for one
	// vNIC (home-side FE-set epoch + offload flag, hosted FE-instance
	// epoch). OpQueryGateway asks the gateway agent for a vNIC's entry
	// (epoch + address list). Both are read-only: recovery reconciles
	// the journal against them without mutating anything.
	OpQueryVNIC
	OpQueryGateway
)

func (o Op) String() string {
	switch o {
	case OpInstallFE:
		return "install-fe"
	case OpRemoveFE:
		return "remove-fe"
	case OpSetFEs:
		return "set-fes"
	case OpOffloadStart:
		return "offload-start"
	case OpOffloadAbort:
		return "offload-abort"
	case OpOffloadFinalize:
		return "offload-finalize"
	case OpFallbackStart:
		return "fallback-start"
	case OpFallbackFinalize:
		return "fallback-finalize"
	case OpGatewaySet:
		return "gateway-set"
	case OpQueryVNIC:
		return "query-vnic"
	case OpQueryGateway:
		return "query-gateway"
	default:
		return "unknown"
	}
}

// Request is one control-plane mutation. Which fields matter depends
// on Op; Epoch versions every config-bearing operation.
type Request struct {
	ID    uint64
	Op    Op
	VNIC  uint32
	Epoch uint64
	// FEs is the FE address list (OpSetFEs, OpOffloadStart,
	// OpGatewaySet).
	FEs []packet.IPv4
	// Rules carries rule tables (OpInstallFE, OpFallbackStart).
	Rules *tables.RuleSet
	// BE is the backend location an FE instance forwards to
	// (OpInstallFE).
	BE packet.IPv4
	// Decap marks stateful decapsulation for the FE instance.
	Decap bool
	// ApplyDelay models the local config-programming time at the
	// receiver (rule-table writes are the §4.2 lognormal push delay);
	// the ack is sent only after the apply completes.
	ApplyDelay sim.Time
}

// wireBytes approximates the request's on-wire payload size, so config
// pushes charge realistic fabric bandwidth (rule tables dominate).
func (r *Request) wireBytes() int {
	n := 64 + 4*len(r.FEs)
	if r.Rules != nil {
		n += r.Rules.SizeBytes()
	}
	return n
}

// ErrTimeout reports that a call exhausted its attempt budget without
// an ack.
var ErrTimeout = errors.New("ctrlrpc: request timed out")

// Reply carries a query response. Like request bodies, replies ride
// the per-transport side registry keyed by request ID; the ack packet
// decides whether and when the reply arrives.
type Reply struct {
	// Epoch is the receiver's installed config epoch for the vNIC: the
	// gateway entry's epoch (OpQueryGateway) or the home vSwitch's
	// FE-set epoch (OpQueryVNIC).
	Epoch uint64
	// Addrs is the gateway entry's address list (OpQueryGateway).
	Addrs []packet.IPv4
	// Resident / Offloaded describe the vNIC at its home vSwitch.
	Resident  bool
	Offloaded bool
	// HasFE / FEEpoch describe a hosted FE instance at the queried
	// vSwitch (OpQueryVNIC).
	HasFE   bool
	FEEpoch uint64
}

// Options tunes the client transport.
type Options struct {
	// Addr is the transport's own fabric address.
	Addr packet.IPv4
	// Timeout is the per-attempt ack deadline (default 500 ms — covers
	// the p99 lognormal rule push plus fabric RTT).
	Timeout sim.Time
	// MaxAttempts bounds retransmissions (default 4).
	MaxAttempts int
	// Backoff is the base retransmit spacing, doubled per attempt and
	// capped at MaxBackoff (defaults 200 ms / 1 s). Each wait is
	// jittered uniformly in [0.5, 1.5)x to avoid retry synchronization.
	Backoff    sim.Time
	MaxBackoff sim.Time
}

func (o *Options) fill() {
	if o.Timeout <= 0 {
		o.Timeout = 500 * sim.Millisecond
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.Backoff <= 0 {
		o.Backoff = 200 * sim.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = sim.Second
	}
}

// Stats counts transport activity.
type Stats struct {
	Sent    uint64 // request packets sent (including retransmits)
	Retries uint64 // retransmitted attempts
	Acked   uint64 // calls completed OK
	Nacked  uint64 // calls completed with a receiver error
	Expired uint64 // calls that exhausted the attempt budget
	DupAcks uint64 // acks for already-completed calls
	// Abandoned counts in-flight calls forgotten by a controller crash;
	// DownDrops counts acks discarded while the transport was down.
	Abandoned uint64
	DownDrops uint64
}

type call struct {
	req   *Request
	to    packet.IPv4
	done  func(error)
	doneQ func(*Reply, error)
}

// Transport is the controller-side RPC client. It owns a fabric
// address; acks are packets delivered back to it.
type Transport struct {
	loop *sim.Loop
	fab  *fabric.Fabric
	rng  *sim.Rand
	opts Options

	nextID   uint64
	pending  map[uint64]*call
	verdicts map[uint64]error
	replies  map[uint64]*Reply
	// down models the owning process being dead: arriving acks are
	// discarded, exactly as packets to a crashed host would be.
	down bool

	// ob, when set by EnableObs, records retry/expiry events.
	ob *obs.Obs

	Stats Stats
}

// NewTransport builds a transport and registers it on the fabric. rng
// must be a dedicated deterministic stream (backoff jitter draws from
// it).
func NewTransport(loop *sim.Loop, fab *fabric.Fabric, rng *sim.Rand, opts Options) *Transport {
	opts.fill()
	t := &Transport{
		loop:     loop,
		fab:      fab,
		rng:      rng,
		opts:     opts,
		pending:  make(map[uint64]*call),
		verdicts: make(map[uint64]error),
		replies:  make(map[uint64]*Reply),
	}
	fab.Register(opts.Addr, -1, t.handleAck)
	return t
}

// Addr returns the transport's fabric address.
func (t *Transport) Addr() packet.IPv4 { return t.opts.Addr }

// Call sends req to the agent at `to` and invokes done exactly once:
// with nil when the agent acked success, with the agent's error on a
// nack, or with ErrTimeout after MaxAttempts unacked attempts. done
// may be nil for best-effort calls.
func (t *Transport) Call(to packet.IPv4, req *Request, done func(error)) {
	t.nextID++
	req.ID = t.nextID
	if done == nil {
		done = func(error) {}
	}
	cl := &call{req: req, to: to, done: done}
	t.pending[req.ID] = cl
	t.attempt(cl, 1)
}

// Query sends a read-only request and invokes done exactly once with
// the agent's Reply (nil on error). Same delivery semantics as Call.
func (t *Transport) Query(to packet.IPv4, req *Request, done func(*Reply, error)) {
	t.nextID++
	req.ID = t.nextID
	if done == nil {
		done = func(*Reply, error) {}
	}
	cl := &call{req: req, to: to, doneQ: done}
	t.pending[req.ID] = cl
	t.attempt(cl, 1)
}

// SetDown flips the transport's liveness. Going down abandons every
// in-flight call — their done callbacks never fire, exactly as a
// process crash forgets its continuations — and discards acks until
// the transport comes back up.
func (t *Transport) SetDown(down bool) {
	t.down = down
	if down {
		t.Stats.Abandoned += uint64(len(t.pending))
		t.pending = make(map[uint64]*call)
		t.verdicts = make(map[uint64]error)
		t.replies = make(map[uint64]*Reply)
	}
}

// Down reports whether the transport is down.
func (t *Transport) Down() bool { return t.down }

func (t *Transport) attempt(cl *call, n int) {
	if t.pending[cl.req.ID] != cl {
		return // completed while a retry was queued
	}
	t.Stats.Sent++
	if n > 1 {
		t.Stats.Retries++
		t.ob.Event(t.loop.Now(), "rpc-retry", cl.to, cl.req.VNIC, "op=%v id=%d attempt=%d", cl.req.Op, cl.req.ID, n)
	}
	p := packet.New(cl.req.ID, 0, 0, packet.FiveTuple{
		SrcIP: t.opts.Addr, DstIP: cl.to,
		SrcPort: ctrlClientPort, DstPort: vswitch.CtrlPort,
		Proto: packet.ProtoUDP,
	}, packet.DirTX, 0, cl.req.wireBytes())
	p.SentAt = int64(t.loop.Now())
	p.Encap(t.opts.Addr, cl.to)
	t.fab.Send(t.opts.Addr, cl.to, p)
	t.loop.Schedule(t.opts.Timeout, func() {
		if t.pending[cl.req.ID] != cl {
			return
		}
		if n >= t.opts.MaxAttempts {
			delete(t.pending, cl.req.ID)
			delete(t.verdicts, cl.req.ID)
			delete(t.replies, cl.req.ID)
			t.Stats.Expired++
			t.ob.Event(t.loop.Now(), "rpc-timeout", cl.to, cl.req.VNIC, "op=%v id=%d attempts=%d", cl.req.Op, cl.req.ID, n)
			err := fmt.Errorf("%w: %v to %v after %d attempts", ErrTimeout, cl.req.Op, cl.to, n)
			if cl.doneQ != nil {
				cl.doneQ(nil, err)
			} else {
				cl.done(err)
			}
			return
		}
		back := t.opts.Backoff << uint(n-1)
		if back > t.opts.MaxBackoff {
			back = t.opts.MaxBackoff
		}
		back = sim.Time(float64(back) * (0.5 + t.rng.Float64()))
		t.loop.Schedule(back, func() { t.attempt(cl, n+1) })
	})
}

// ctrlClientPort is the transport's source port for requests.
const ctrlClientPort = 40002

// Body looks up the request body for an in-flight request ID (the
// agent side of the out-of-band payload registry). The reply-to
// address is the transport's own.
func (t *Transport) Body(id uint64) (*Request, packet.IPv4, bool) {
	cl, ok := t.pending[id]
	if !ok {
		return nil, 0, false
	}
	return cl.req, t.opts.Addr, true
}

// Verdict records the agent's apply result for a request, consumed
// when the ack packet is delivered. Re-acks of an applied duplicate
// overwrite with the same value.
func (t *Transport) Verdict(id uint64, err error) {
	if _, ok := t.pending[id]; ok {
		t.verdicts[id] = err
	}
}

// SetReply records a query's response alongside its verdict.
func (t *Transport) SetReply(id uint64, rep *Reply) {
	if _, ok := t.pending[id]; ok {
		t.replies[id] = rep
	}
}

// handleAck completes the pending call an arriving ack packet names.
func (t *Transport) handleAck(p *packet.Packet) {
	if t.down {
		t.Stats.DownDrops++
		return
	}
	cl, ok := t.pending[p.ID]
	if !ok {
		t.Stats.DupAcks++
		return
	}
	res := t.verdicts[p.ID]
	rep := t.replies[p.ID]
	delete(t.pending, p.ID)
	delete(t.verdicts, p.ID)
	delete(t.replies, p.ID)
	if res == nil {
		t.Stats.Acked++
	} else {
		t.Stats.Nacked++
	}
	if cl.doneQ != nil {
		cl.doneQ(rep, res)
	} else {
		cl.done(res)
	}
}
