package ctrlrpc

import (
	"nezha/internal/obs"
)

// EnableObs publishes the transport's attempt/retry/dedup/timeout
// counters into the registry and records retries and expiries into
// the flight recorder. Counters are snapshot-time funcs over the
// plain Stats fields (owned by the sim goroutine); the hot path only
// pays for recorder events on the rare retry/expiry edges.
func (t *Transport) EnableObs(o *obs.Obs) {
	if o == nil {
		return
	}
	t.ob = o
	r := o.Reg
	r.Help("ctrlrpc_attempts_total", "RPC send attempts, including retries.")
	r.Help("ctrlrpc_retries_total", "RPC attempts that were retransmissions.")
	r.Help("ctrlrpc_acked_total", "RPCs acknowledged by the target.")
	r.Help("ctrlrpc_nacked_total", "RPCs negatively acknowledged.")
	r.Help("ctrlrpc_timeouts_total", "RPCs that exhausted retries and expired.")
	r.Help("ctrlrpc_dup_acks_total", "Duplicate acknowledgements discarded.")
	r.Help("ctrlrpc_pending", "RPCs awaiting acknowledgement.")
	r.CounterFunc("ctrlrpc_attempts_total", nil, func() uint64 { return t.Stats.Sent })
	r.CounterFunc("ctrlrpc_retries_total", nil, func() uint64 { return t.Stats.Retries })
	r.CounterFunc("ctrlrpc_acked_total", nil, func() uint64 { return t.Stats.Acked })
	r.CounterFunc("ctrlrpc_nacked_total", nil, func() uint64 { return t.Stats.Nacked })
	r.CounterFunc("ctrlrpc_timeouts_total", nil, func() uint64 { return t.Stats.Expired })
	r.CounterFunc("ctrlrpc_dup_acks_total", nil, func() uint64 { return t.Stats.DupAcks })
	r.GaugeFunc("ctrlrpc_pending", nil, func() float64 { return float64(len(t.pending)) })
}
