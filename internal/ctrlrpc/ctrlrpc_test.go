package ctrlrpc

import (
	"errors"
	"testing"

	"nezha/internal/fabric"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
)

func ip(a, b, c, d byte) packet.IPv4 { return packet.MakeIP(a, b, c, d) }

type rig struct {
	loop  *sim.Loop
	fab   *fabric.Fabric
	gw    *fabric.Gateway
	t     *Transport
	vs    *vswitch.VSwitch
	agent *Agent
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{loop: sim.NewLoop(7)}
	r.fab = fabric.New(r.loop)
	r.gw = fabric.NewGateway(r.loop)
	r.t = NewTransport(r.loop, r.fab, sim.NewRand(11), Options{Addr: ip(10, 0, 0, 253)})
	r.vs = vswitch.New(r.loop, r.fab, r.gw, vswitch.Config{Addr: ip(10, 0, 0, 1)})
	r.agent = NewAgent(r.loop, r.fab, r.t, r.vs)
	return r
}

func mkRules(vnic uint32) *tables.RuleSet { return tables.NewRuleSet(vnic, 1) }

func TestCallAckRoundTrip(t *testing.T) {
	r := newRig(t)
	var got error
	called := false
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpInstallFE, VNIC: 7, Epoch: 1, Rules: mkRules(7), BE: ip(10, 0, 0, 2),
	}, func(err error) { got = err; called = true })
	r.loop.Run(2 * sim.Second)
	if !called {
		t.Fatal("done never invoked")
	}
	if got != nil {
		t.Fatalf("done(%v), want nil", got)
	}
	if !r.vs.HostsFE(7) {
		t.Fatal("FE instance not installed at the agent's vSwitch")
	}
	if r.t.Stats.Acked != 1 || r.t.Stats.Sent != 1 || r.t.Stats.Retries != 0 {
		t.Fatalf("transport stats = %+v, want one clean acked send", r.t.Stats)
	}
	if r.agent.Stats.Applied != 1 || r.agent.Stats.Duplicates != 0 {
		t.Fatalf("agent stats = %+v, want one apply, no duplicates", r.agent.Stats)
	}
}

func TestNackPropagatesReceiverError(t *testing.T) {
	r := newRig(t)
	// OpSetFEs against a vNIC the vSwitch does not host nacks.
	var got error
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpSetFEs, VNIC: 99, Epoch: 1, FEs: []packet.IPv4{ip(10, 0, 0, 2)},
	}, func(err error) { got = err })
	r.loop.Run(2 * sim.Second)
	if got == nil {
		t.Fatal("want the receiver's error, got nil")
	}
	if r.t.Stats.Nacked != 1 {
		t.Fatalf("Nacked = %d, want 1", r.t.Stats.Nacked)
	}
}

// dropFirst builds a fault injector dropping the first n packets that
// match, counting accounted chaos losses.
func dropFirst(n *int, match func(from, to packet.IPv4, p *packet.Packet) bool) fabric.FaultInjector {
	return func(from, to packet.IPv4, p *packet.Packet) fabric.FaultVerdict {
		if *n > 0 && match(from, to, p) {
			*n--
			return fabric.FaultVerdict{Drop: true}
		}
		return fabric.FaultVerdict{}
	}
}

func TestLostRequestIsRetried(t *testing.T) {
	r := newRig(t)
	drops := 2
	r.fab.SetFaultInjector(dropFirst(&drops, func(from, to packet.IPv4, p *packet.Packet) bool {
		return to == r.vs.Addr() // request direction only
	}))
	var got error
	called := false
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpInstallFE, VNIC: 7, Epoch: 1, Rules: mkRules(7), BE: ip(10, 0, 0, 2),
	}, func(err error) { got = err; called = true })
	r.loop.Run(10 * sim.Second)
	if !called || got != nil {
		t.Fatalf("done(%v) called=%v, want nil after retries", got, called)
	}
	if r.t.Stats.Retries < 2 {
		t.Fatalf("Retries = %d, want >= 2 (two request packets dropped)", r.t.Stats.Retries)
	}
	if r.agent.Stats.Applied != 1 {
		t.Fatalf("Applied = %d, want exactly 1", r.agent.Stats.Applied)
	}
	if !r.vs.HostsFE(7) {
		t.Fatal("FE instance not installed after retry")
	}
}

func TestPartitionExhaustsAttempts(t *testing.T) {
	r := newRig(t)
	r.fab.Partition(r.t.Addr(), r.vs.Addr())
	var got error
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpInstallFE, VNIC: 7, Epoch: 1, Rules: mkRules(7), BE: ip(10, 0, 0, 2),
	}, func(err error) { got = err })
	r.loop.Run(30 * sim.Second)
	if !errors.Is(got, ErrTimeout) {
		t.Fatalf("done(%v), want ErrTimeout", got)
	}
	if r.t.Stats.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", r.t.Stats.Expired)
	}
	if r.t.Stats.Sent != 4 {
		t.Fatalf("Sent = %d, want MaxAttempts (4)", r.t.Stats.Sent)
	}
	if r.vs.HostsFE(7) {
		t.Fatal("partitioned vSwitch should never have applied the request")
	}
}

func TestLostAckDeduplicates(t *testing.T) {
	r := newRig(t)
	drops := 1
	r.fab.SetFaultInjector(dropFirst(&drops, func(from, to packet.IPv4, p *packet.Packet) bool {
		return from == r.vs.Addr() // ack direction only
	}))
	var got error
	called := false
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpInstallFE, VNIC: 7, Epoch: 1, Rules: mkRules(7), BE: ip(10, 0, 0, 2),
	}, func(err error) { got = err; called = true })
	r.loop.Run(10 * sim.Second)
	if !called || got != nil {
		t.Fatalf("done(%v) called=%v, want nil via the duplicate's re-ack", got, called)
	}
	// The retransmit must be deduplicated, not re-applied.
	if r.agent.Stats.Applied != 1 {
		t.Fatalf("Applied = %d, want exactly 1 (idempotent dedup)", r.agent.Stats.Applied)
	}
	if r.agent.Stats.Duplicates == 0 {
		t.Fatal("retransmit never hit the dedup path")
	}
}

func TestCrashForgetsInFlightApply(t *testing.T) {
	r := newRig(t)
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpInstallFE, VNIC: 7, Epoch: 1, Rules: mkRules(7), BE: ip(10, 0, 0, 2),
		ApplyDelay: 100 * sim.Millisecond,
	}, nil)
	// Crash while the apply is pending, revive before the retransmit.
	r.loop.Schedule(50*sim.Millisecond, r.vs.Crash)
	r.loop.Schedule(300*sim.Millisecond, r.vs.Revive)
	r.loop.Run(10 * sim.Second)
	if r.agent.Stats.Crashed != 1 {
		t.Fatalf("Crashed = %d, want 1 (apply abandoned mid-programming)", r.agent.Stats.Crashed)
	}
	if !r.vs.HostsFE(7) {
		t.Fatal("post-revival retransmit should have applied cleanly")
	}
	if r.agent.Stats.Applied != 1 {
		t.Fatalf("Applied = %d, want 1", r.agent.Stats.Applied)
	}
}

func TestVSwitchRejectsStaleEpochs(t *testing.T) {
	r := newRig(t)
	be := ip(10, 0, 0, 2)
	if err := r.vs.InstallFEEpoch(mkRules(7), be, false, 5); err != nil {
		t.Fatal(err)
	}
	// A straggling rollback from an older transaction must not tear
	// down the newer install.
	r.vs.RemoveFEEpoch(7, 4)
	if !r.vs.HostsFE(7) {
		t.Fatal("RemoveFE at an older epoch tore down a newer install")
	}
	// Same-epoch re-install (idempotent retry) is accepted.
	if err := r.vs.InstallFEEpoch(mkRules(7), be, false, 5); err != nil {
		t.Fatalf("same-epoch re-install rejected: %v", err)
	}
	if err := r.vs.InstallFEEpoch(mkRules(7), be, false, 3); err == nil {
		t.Fatal("older-epoch install accepted")
	}
	// BE-side FE-set pushes follow the same discipline.
	if err := r.vs.AddVNIC(tables.NewRuleSet(9, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := r.vs.SetFEsEpoch(9, []packet.IPv4{be}, 7); err != nil {
		t.Fatal(err)
	}
	if err := r.vs.SetFEsEpoch(9, nil, 6); err == nil {
		t.Fatal("stale FE-set push accepted")
	}
	if got := r.vs.FESetEpoch(9); got != 7 {
		t.Fatalf("FESetEpoch = %d, want 7", got)
	}
	if err := r.vs.OffloadStartEpoch(9, []packet.IPv4{be}, 6); err == nil {
		t.Fatal("stale OffloadStart accepted")
	}
}

func TestGatewayAgentEpochDiscipline(t *testing.T) {
	r := newRig(t)
	ga := NewGatewayAgent(r.loop, r.fab, r.t, r.gw, ip(10, 0, 0, 252))
	a, b := ip(10, 0, 0, 1), ip(10, 0, 0, 2)
	push := func(epoch uint64, fes ...packet.IPv4) error {
		var got error
		r.t.Call(ga.Addr(), &Request{Op: OpGatewaySet, VNIC: 7, Epoch: epoch, FEs: fes},
			func(err error) { got = err })
		r.loop.Run(r.loop.Now() + 2*sim.Second)
		return got
	}
	if err := push(5, a); err != nil {
		t.Fatal(err)
	}
	if err := push(4, b); !errors.Is(err, fabric.ErrStaleEpoch) {
		t.Fatalf("stale push err = %v, want ErrStaleEpoch", err)
	}
	if addrs, _ := r.gw.Lookup(7); len(addrs) != 1 || addrs[0] != a {
		t.Fatalf("stale push mutated the table: %v", addrs)
	}
	// Equal epoch re-applies (an idempotent retry that lost a race).
	if err := push(5, b); err != nil {
		t.Fatalf("same-epoch re-apply rejected: %v", err)
	}
	if got := r.gw.Epoch(7); got != 5 {
		t.Fatalf("gateway epoch = %d, want 5", got)
	}
}

// TestQueryVNICReply round-trips a read-only state query: the reply
// must describe the installed FE instance and the home-side config.
func TestQueryVNICReply(t *testing.T) {
	r := newRig(t)
	// Install an FE instance at the vSwitch first.
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpInstallFE, VNIC: 7, Epoch: 5, Rules: mkRules(7), BE: ip(10, 0, 0, 2),
	}, nil)
	r.loop.Run(2 * sim.Second)

	var rep *Reply
	r.t.Query(r.vs.Addr(), &Request{Op: OpQueryVNIC, VNIC: 7}, func(got *Reply, err error) {
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		rep = got
	})
	r.loop.Run(r.loop.Now() + 2*sim.Second)
	if rep == nil {
		t.Fatal("query reply never arrived")
	}
	if !rep.HasFE || rep.FEEpoch != 5 {
		t.Fatalf("reply = %+v, want hosted FE at epoch 5", rep)
	}
	if rep.Resident {
		t.Fatalf("reply = %+v: vNIC is not resident at this vSwitch", rep)
	}
}

// TestQueryGatewayReply checks the gateway agent answers entry queries
// with epoch + addresses.
func TestQueryGatewayReply(t *testing.T) {
	r := newRig(t)
	ga := NewGatewayAgent(r.loop, r.fab, r.t, r.gw, ip(10, 0, 0, 250))
	home := ip(10, 0, 0, 1)
	if err := r.gw.SetEpoch(77, 3, home); err != nil {
		t.Fatal(err)
	}
	var rep *Reply
	r.t.Query(ga.Addr(), &Request{Op: OpQueryGateway, VNIC: 77}, func(got *Reply, err error) {
		if err != nil {
			t.Fatalf("query failed: %v", err)
		}
		rep = got
	})
	r.loop.Run(2 * sim.Second)
	if rep == nil {
		t.Fatal("query reply never arrived")
	}
	if !rep.Resident || rep.Epoch != 3 || len(rep.Addrs) != 1 || rep.Addrs[0] != home {
		t.Fatalf("reply = %+v, want epoch 3 at %v", rep, home)
	}
}

// TestSetDownAbandonsInFlight pins the crash semantics: going down
// forgets in-flight calls (their callbacks never fire, like a dead
// process's continuations) and discards acks arriving meanwhile.
func TestSetDownAbandonsInFlight(t *testing.T) {
	r := newRig(t)
	fired := false
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpInstallFE, VNIC: 7, Epoch: 1, Rules: mkRules(7), BE: ip(10, 0, 0, 2),
		ApplyDelay: 100 * sim.Millisecond,
	}, func(error) { fired = true })
	// Crash before the apply completes.
	r.loop.Run(10 * sim.Millisecond)
	r.t.SetDown(true)
	r.loop.Run(r.loop.Now() + 2*sim.Second)
	if fired {
		t.Fatal("done fired across a crash")
	}
	if r.t.Stats.Abandoned != 1 {
		t.Fatalf("Abandoned = %d, want 1", r.t.Stats.Abandoned)
	}
	if r.t.Stats.DownDrops == 0 {
		t.Fatal("the agent's ack should have been discarded while down")
	}
	// The apply itself still happened at the agent: the receiver keeps
	// serving its last instruction regardless of the caller's death.
	if !r.vs.HostsFE(7) {
		t.Fatal("agent-side apply must survive the caller crash")
	}
	// Revive: new calls work again.
	r.t.SetDown(false)
	var got error
	called := false
	r.t.Call(r.vs.Addr(), &Request{
		Op: OpSetFEs, VNIC: 7, Epoch: 2, FEs: []packet.IPv4{ip(10, 0, 0, 2)},
	}, func(err error) { got = err; called = true })
	r.loop.Run(r.loop.Now() + 2*sim.Second)
	if !called {
		t.Fatal("post-revival call never completed")
	}
	_ = got
}
