package baseline

// Table 5's deployment cost comparison is not something a simulator
// can measure — it is an engineering-economics model. This file
// encodes the paper's published person-month figures together with
// the structural reasons behind them, so the benchmark harness can
// print the table with its derivation instead of bare constants.

// DeploymentCost quantifies what it takes to field a solution.
type DeploymentCost struct {
	Name string
	// Person-months.
	HardwareDevPM float64
	SoftwareDevPM float64
	IterationPM   float64
	// Scale-out lead time to a new region, days.
	ScaleOutMinDays float64
	ScaleOutMaxDays float64
	// NewDevices reports whether new hardware enters the DC.
	NewDevices bool
	// Rationale summarizes where the numbers come from.
	Rationale string
}

// TotalPM sums the person-month line items.
func (d DeploymentCost) TotalPM() float64 {
	return d.HardwareDevPM + d.SoftwareDevPM + d.IterationPM
}

// SailfishCost reproduces Table 5's Sailfish column: a new Tofino
// gateway device needs chip selection, board design, prototype
// testing, security assessment and performance work (hardware), full
// gateway functionality from scratch (software), dedicated staffing
// for iteration, and physical rollout (racks, wiring, procurement)
// when scaling out.
func SailfishCost() DeploymentCost {
	return DeploymentCost{
		Name:            "Sailfish",
		HardwareDevPM:   100,
		SoftwareDevPM:   48,
		IterationPM:     20,
		ScaleOutMinDays: 30,
		ScaleOutMaxDays: 90,
		NewDevices:      true,
		Rationale: "new Tofino device: chip selection, design, prototyping, " +
			"security assessment, perf optimization; full gateway software; " +
			"rack/wiring/procurement for every new region",
	}
}

// NezhaCost reproduces Table 5's Nezha column: existing SmartNICs are
// reused (no hardware work), under 5% of the existing vSwitch code is
// modified (15 P-M), the existing vSwitch team absorbs iteration, and
// scale-out is a cluster-level grey software release (1–7 days).
func NezhaCost() DeploymentCost {
	return DeploymentCost{
		Name:            "Nezha",
		HardwareDevPM:   0,
		SoftwareDevPM:   15,
		IterationPM:     0,
		ScaleOutMinDays: 1,
		ScaleOutMaxDays: 7,
		NewDevices:      false,
		Rationale: "reuses deployed SmartNICs; modifies <5% of vSwitch code; " +
			"vSwitch team iterates as part of normal work; scale-out is a " +
			"grey software release",
	}
}

// DevEffortRatio returns Nezha's development effort as a fraction of
// Sailfish's (the paper quotes ~10%).
func DevEffortRatio() float64 {
	return NezhaCost().TotalPM() / SailfishCost().TotalPM()
}
