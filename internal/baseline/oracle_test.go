package baseline

import "testing"

func testOracle() OracleConfig {
	return OracleConfig{FECapacityHz: 1e6, TargetUtil: 0.5, MinFEs: 2, MaxFEs: 8}
}

func TestOraclePoolFor(t *testing.T) {
	oc := testOracle()
	// Per-FE budget 0.5 MHz.
	cases := []struct {
		load float64
		want int
	}{
		{0, 2},      // clamped to MinFEs
		{0.4e6, 2},  // ceil(0.8)=1 → MinFEs
		{1.6e6, 4},  // ceil(3.2)
		{100e6, 8},  // clamped to MaxFEs
		{2.0e6, 4},  // exact boundary
		{2.01e6, 5}, // just past it
	}
	for _, c := range cases {
		if got := oc.PoolFor(c.load); got != c.want {
			t.Errorf("PoolFor(%.2g) = %d, want %d", c.load, got, c.want)
		}
	}
}

func TestScoreAgainstOracle(t *testing.T) {
	oc := testOracle()
	// 8 windows of steady 1.6 MHz: oracle plan is a stable 4.
	loads := make([]float64, 8)
	for i := range loads {
		loads[i] = 1.6e6
	}
	// Policy runs 4 except two windows at 5 (25% off).
	pools := []int{4, 4, 4, 5, 5, 4, 4, 4}
	s := oc.ScoreAgainstOracle(pools, loads)
	// Stability run reaches StableRun at window index 3: windows 3..7
	// are converged (5 of them), two of which are 25% off.
	if s.ConvergedWindows != 5 {
		t.Fatalf("converged windows = %d, want 5", s.ConvergedWindows)
	}
	wantGap := 100 * (2 * 0.25) / 5
	if diff := s.ConvergedGapPct - wantGap; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("converged gap = %.4f%%, want %.4f%%", s.ConvergedGapPct, wantGap)
	}
	if s.MeanGapPct <= 0 || s.MeanGapPct >= 25 {
		t.Fatalf("mean gap = %.2f%%, want in (0, 25)", s.MeanGapPct)
	}

	// A perfect policy scores zero on both.
	perfect := oc.ScoreAgainstOracle(oc.OraclePlan(loads), loads)
	if perfect.MeanGapPct != 0 || perfect.ConvergedGapPct != 0 {
		t.Fatalf("perfect policy scored %+v", perfect)
	}

	// A ramp breaks the stability run: alternating oracle sizes never
	// converge.
	var rampLoads []float64
	for i := 0; i < 8; i++ {
		rampLoads = append(rampLoads, float64(i+1)*0.5e6)
	}
	if s := oc.ScoreAgainstOracle([]int{2, 2, 3, 4, 5, 6, 7, 8}, rampLoads); s.ConvergedWindows != 0 {
		t.Fatalf("ramp scored %d converged windows, want 0", s.ConvergedWindows)
	}
}

func TestSiriusStaticCards(t *testing.T) {
	oc := testOracle()
	// Peak 1.6 MHz → 4 FEs → 8 cards with in-line replication.
	loads := []float64{0.2e6, 1.6e6, 0.8e6}
	if got := oc.SiriusStaticCards(loads); got != 8 {
		t.Fatalf("SiriusStaticCards = %d, want 8", got)
	}
	if got := oc.SiriusStaticCards(nil); got != 2*oc.MinFEs {
		t.Fatalf("empty trace sized %d, want floor pool doubled", got)
	}
}
