package baseline

import (
	"math"
	"testing"

	"nezha/internal/sim"
)

// offer pushes n connection setups at the given rate through fn.
func offer(loop *sim.Loop, n int, rate float64, fn func(hash uint64)) {
	gap := sim.Time(float64(sim.Second) / rate)
	for i := 0; i < n; i++ {
		i := i
		loop.Schedule(gap*sim.Time(i), func() { fn(uint64(i)*2654435761 + 12345) })
	}
}

func TestSiriusReplicationHalvesCPS(t *testing.T) {
	// Same cards, same per-connection cost; Sirius replicates in-line,
	// Nezha does not. Under saturating load the established-connection
	// ratio must approach 2x (§1: "the NF capacity halves").
	cfg := DefaultSiriusConfig(4)

	loopS := sim.NewLoop(1)
	sirius := NewSiriusPool(loopS, cfg)
	offer(loopS, 200000, 2_000_000, func(h uint64) { sirius.NewConnection(h, nil) })
	loopS.RunAll()
	sElapsed := loopS.Now().Seconds()

	loopN := sim.NewLoop(1)
	nez := NewNezhaPoolView(loopN, cfg)
	offer(loopN, 200000, 2_000_000, func(h uint64) { nez.NewConnection(h, nil) })
	loopN.RunAll()
	nElapsed := loopN.Now().Seconds()

	sCPS := float64(sirius.Established) / sElapsed
	nCPS := float64(nez.Established) / nElapsed
	ratio := nCPS / sCPS
	if math.Abs(ratio-2.0) > 0.3 {
		t.Fatalf("Nezha/Sirius CPS ratio = %.2f (S=%.0f N=%.0f), want ≈2.0", ratio, sCPS, nCPS)
	}
	if sirius.Replications != sirius.Established {
		t.Fatalf("every established connection must replicate: %d vs %d",
			sirius.Replications, sirius.Established)
	}
}

func TestSiriusLowLoadNoPenalty(t *testing.T) {
	// Below saturation, replication costs capacity, not goodput.
	cfg := DefaultSiriusConfig(4)
	loop := sim.NewLoop(2)
	p := NewSiriusPool(loop, cfg)
	ok := 0
	offer(loop, 1000, 10_000, func(h uint64) {
		p.NewConnection(h, func(accepted bool) {
			if accepted {
				ok++
			}
		})
	})
	loop.RunAll()
	if ok != 1000 {
		t.Fatalf("low-load drops: %d/1000", ok)
	}
}

func TestSiriusBucketMoveCountsTransfers(t *testing.T) {
	cfg := DefaultSiriusConfig(4)
	loop := sim.NewLoop(3)
	p := NewSiriusPool(loop, cfg)
	// Establish 100 flows in bucket 0 (hashes ≡ 0 mod 64).
	for i := 0; i < 100; i++ {
		p.NewConnection(uint64(i*64), nil)
	}
	loop.RunAll()
	// Retire 30 of them.
	for i := 0; i < 30; i++ {
		p.FlowDone(uint64(i * 64))
	}
	p.MoveBucket(0, 3)
	if p.StateTransfers != 70 {
		t.Fatalf("state transfers = %d, want 70 (only live long flows move)", p.StateTransfers)
	}
	// Moving to the same card is a no-op.
	before := p.StateTransfers
	p.MoveBucket(0, 3)
	if p.StateTransfers != before {
		t.Fatal("no-op move counted transfers")
	}
	// Out-of-range arguments are ignored.
	p.MoveBucket(-1, 0)
	p.MoveBucket(0, 99)
	if p.StateTransfers != before {
		t.Fatal("invalid moves counted transfers")
	}
}

func TestSiriusMinimumCards(t *testing.T) {
	loop := sim.NewLoop(4)
	p := NewSiriusPool(loop, SiriusConfig{Cards: 1, Cores: 1, CoreHz: 1e9, ConnCycles: 10, ReplicateCycles: 10, Buckets: 4, MaxQueueDelay: sim.Millisecond})
	if len(p.Cards()) != 2 {
		t.Fatal("pool must have at least a primary/secondary pair")
	}
}

func TestSailfishModel(t *testing.T) {
	m := SailfishModel{StatelessFraction: 0.5}
	if m.SpeedupCPS() != 2 {
		t.Fatalf("50%% stateless should double CPS, got %v", m.SpeedupCPS())
	}
	m = SailfishModel{StatelessFraction: 1}
	if m.SpeedupCPS() < 1e6 {
		t.Fatal("fully stateless should be unbounded")
	}
	m = SailfishModel{StatelessFraction: 0}
	if m.SpeedupCPS() != 1 {
		t.Fatal("no stateless fraction, no speedup")
	}
}

func TestCostModelTable5(t *testing.T) {
	s, n := SailfishCost(), NezhaCost()
	if s.TotalPM() != 168 || n.TotalPM() != 15 {
		t.Fatalf("totals = %v / %v, want 168 / 15", s.TotalPM(), n.TotalPM())
	}
	// Paper: Nezha needs only ~10% of the development effort.
	r := DevEffortRatio()
	if r < 0.05 || r > 0.15 {
		t.Fatalf("effort ratio = %.3f, want ≈0.10", r)
	}
	if !s.NewDevices || n.NewDevices {
		t.Fatal("device flags wrong")
	}
	if n.ScaleOutMaxDays >= s.ScaleOutMinDays {
		t.Fatal("Nezha scale-out should beat Sailfish's best case")
	}
}
