// Package baseline implements the comparators the paper positions
// Nezha against (Table 2, §8): a Sirius-style dedicated DPU pool with
// primary-backup in-line state replication and bucket-based load
// balancing, a Sailfish-style stateless-only offloader, and the
// Table 5 deployment cost model. The monolithic "local-only" baseline
// needs no code — it is a Nezha cluster with offloading disabled.
package baseline

import (
	"nezha/internal/nic"
	"nezha/internal/sim"
)

// SiriusConfig sizes a Sirius-style pool.
type SiriusConfig struct {
	// Cards is the number of DPUs in the shared pool.
	Cards int
	// CoreHz and Cores size each DPU (Pensando-class: beefier than a
	// server SmartNIC).
	Cores  int
	CoreHz uint64
	// ConnCycles is the slow-path cost of a new connection on a card.
	ConnCycles uint64
	// ReplicateCycles is the cost of absorbing an in-line replica of
	// a state change on the secondary.
	ReplicateCycles uint64
	// Buckets is the fixed hash-bucket count flows map onto.
	Buckets int
	// MaxQueueDelay bounds card queueing.
	MaxQueueDelay sim.Time
}

// DefaultSiriusConfig mirrors the scaled simulation units used by the
// benches: per-connection cost identical to an FE's slow path so the
// comparison isolates the replication and state-placement design.
func DefaultSiriusConfig(cards int) SiriusConfig {
	return SiriusConfig{
		Cards:           cards,
		Cores:           nic.DefaultCores,
		CoreHz:          nic.DefaultCoreHz,
		ConnCycles:      135_000,
		ReplicateCycles: 135_000, // ping-pong: the secondary re-runs state install in-line
		Buckets:         64,
		MaxQueueDelay:   nic.DefaultMaxQueueDelay,
	}
}

// SiriusPool models the Sirius datapath at connection granularity:
// each new connection is processed on its bucket's primary card and
// replicated in-line to the paired secondary before it is considered
// established — which is why "the NF capacity halves" for CPS (§1).
type SiriusPool struct {
	loop  *sim.Loop
	cfg   SiriusConfig
	cards []*nic.CPU
	// bucket -> card index; the pair (i, i+1 mod N) is primary and
	// secondary.
	buckets []int
	// flowsPerBucket tracks live flows for the state-transfer
	// accounting on bucket moves.
	flowsPerBucket []int

	// Counters.
	Established    uint64
	Dropped        uint64
	Replications   uint64
	StateTransfers uint64
}

// NewSiriusPool builds the pool.
func NewSiriusPool(loop *sim.Loop, cfg SiriusConfig) *SiriusPool {
	if cfg.Cards < 2 {
		cfg.Cards = 2
	}
	p := &SiriusPool{
		loop:           loop,
		cfg:            cfg,
		buckets:        make([]int, cfg.Buckets),
		flowsPerBucket: make([]int, cfg.Buckets),
	}
	for i := 0; i < cfg.Cards; i++ {
		p.cards = append(p.cards, nic.NewCPU(loop, cfg.Cores, cfg.CoreHz, cfg.MaxQueueDelay))
	}
	for b := range p.buckets {
		p.buckets[b] = b % cfg.Cards
	}
	return p
}

// Cards exposes the card CPUs (for utilization meters).
func (p *SiriusPool) Cards() []*nic.CPU { return p.cards }

// NewConnection processes one connection setup: slow path on the
// primary, then in-line replication on the secondary. The replica
// rides the datapath between the paired cards with priority, so it is
// never dropped at admission — its cost is what halves the pool's CPS
// capacity. done fires when both halves complete.
func (p *SiriusPool) NewConnection(flowHash uint64, done func(ok bool)) {
	b := int(flowHash % uint64(len(p.buckets)))
	primary := p.cards[p.buckets[b]]
	secondary := p.cards[(p.buckets[b]+1)%len(p.cards)]
	primary.Submit(p.cfg.ConnCycles, func(ok bool, _ sim.Time) {
		if !ok {
			p.Dropped++
			if done != nil {
				done(false)
			}
			return
		}
		// Ping-pong the state change to the secondary in-line.
		p.Replications++
		secondary.SubmitPriority(p.cfg.ReplicateCycles, func(_ sim.Time) {
			p.Established++
			p.flowsPerBucket[b]++
			if done != nil {
				done(true)
			}
		})
	})
}

// FlowDone retires a flow from its bucket.
func (p *SiriusPool) FlowDone(flowHash uint64) {
	b := int(flowHash % uint64(len(p.buckets)))
	if p.flowsPerBucket[b] > 0 {
		p.flowsPerBucket[b]--
	}
}

// MoveBucket reassigns a bucket to a new card (load balancing). New
// flows land on the new card immediately; flows still live on the old
// card are the long-lived ones whose state must eventually transfer
// (§8) — counted here.
func (p *SiriusPool) MoveBucket(bucket, newCard int) {
	if bucket < 0 || bucket >= len(p.buckets) || newCard < 0 || newCard >= len(p.cards) {
		return
	}
	if p.buckets[bucket] == newCard {
		return
	}
	p.StateTransfers += uint64(p.flowsPerBucket[bucket])
	p.buckets[bucket] = newCard
}

// NezhaPoolView models the same pool of cards operated Nezha-style:
// stateless FEs with the single state copy elsewhere, so a connection
// costs one card one slow path and nothing else — the ablation
// partner for the replication halving.
type NezhaPoolView struct {
	loop  *sim.Loop
	cards []*nic.CPU
	cost  uint64

	Established uint64
	Dropped     uint64
}

// NewNezhaPoolView builds the comparison pool with identical cards.
func NewNezhaPoolView(loop *sim.Loop, cfg SiriusConfig) *NezhaPoolView {
	v := &NezhaPoolView{loop: loop, cost: cfg.ConnCycles}
	for i := 0; i < cfg.Cards; i++ {
		v.cards = append(v.cards, nic.NewCPU(loop, cfg.Cores, cfg.CoreHz, cfg.MaxQueueDelay))
	}
	return v
}

// NewConnection processes one connection setup on the hashed card.
func (v *NezhaPoolView) NewConnection(flowHash uint64, done func(ok bool)) {
	card := v.cards[flowHash%uint64(len(v.cards))]
	card.Submit(v.cost, func(ok bool, _ sim.Time) {
		if ok {
			v.Established++
		} else {
			v.Dropped++
		}
		if done != nil {
			done(ok)
		}
	})
}

// SailfishModel captures the stateless-only offloader: only the
// stateless fraction of NF work can move to the Tofino, so the
// achievable CPS gain is bounded by Amdahl over the stateful
// remainder (Table 2's "stateful NF support: no").
type SailfishModel struct {
	// StatelessFraction is the share of per-connection vSwitch work
	// that is stateless (offloadable to the switch ASIC).
	StatelessFraction float64
}

// SpeedupCPS returns the CPS multiplier when the stateless fraction
// is fully offloaded and the stateful remainder stays on the local
// vSwitch.
func (m SailfishModel) SpeedupCPS() float64 {
	rem := 1 - m.StatelessFraction
	if rem <= 0 {
		return 1e9 // fully stateless: unbounded by the vSwitch
	}
	return 1 / rem
}
