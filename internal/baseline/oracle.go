package baseline

import "math"

// This file scores the self-driving policy loop (internal/policy)
// against two reference points:
//
//   - the offline oracle: given the full load trace in hindsight, the
//     smallest FE pool per window that keeps every FE at or below the
//     target utilization — the plan a clairvoyant operator would have
//     run. The policy can only extrapolate forward, so its gap to the
//     oracle measures the cost of not knowing the future.
//   - a Sirius-style static pool: cards provisioned for the observed
//     peak and doubled for primary-backup replication (§1: "the NF
//     capacity halves"), the no-elasticity comparison.

// OracleConfig mirrors the sizing half of policy.Config so both
// planners answer "how many FEs for this load" identically; only the
// information they see differs.
type OracleConfig struct {
	// FECapacityHz is one FE's relocatable-cycle budget per second.
	FECapacityHz float64
	// TargetUtil is the per-FE utilization ceiling.
	TargetUtil float64
	// MinFEs and MaxFEs clamp the plan to the same bounds the policy
	// honors.
	MinFEs, MaxFEs int
}

// PoolFor returns the smallest pool that serves load (relocatable
// cycles/s) at or below TargetUtil per FE, clamped to [MinFEs, MaxFEs].
func (c OracleConfig) PoolFor(load float64) int {
	per := c.FECapacityHz * c.TargetUtil
	n := 1
	if per > 0 && load > 0 {
		n = int(math.Ceil(load / per))
	}
	if n < c.MinFEs {
		n = c.MinFEs
	}
	if c.MaxFEs > 0 && n > c.MaxFEs {
		n = c.MaxFEs
	}
	return n
}

// OraclePlan maps a recorded per-window load trace to the hindsight
// pool plan.
func (c OracleConfig) OraclePlan(loads []float64) []int {
	plan := make([]int, len(loads))
	for i, l := range loads {
		plan[i] = c.PoolFor(l)
	}
	return plan
}

// OracleScore is the policy-vs-oracle comparison over one run.
type OracleScore struct {
	// MeanGapPct is mean |policy-oracle|/oracle over all windows with a
	// nonzero oracle pool — includes ramp lag, so it is the pessimistic
	// number.
	MeanGapPct float64
	// ConvergedGapPct is the same gap restricted to windows where the
	// oracle plan has been stable for StableRun consecutive windows:
	// the demand is steady and the policy has had time to converge, so
	// residual gap is genuine sizing error, not reaction latency.
	ConvergedGapPct float64
	// ConvergedWindows counts the windows ConvergedGapPct averaged
	// over.
	ConvergedWindows int
}

// StableRun is how many consecutive identical oracle windows qualify a
// window as "converged" for ConvergedGapPct.
const StableRun = 4

// ScoreAgainstOracle compares the policy's per-window pool trace to
// the oracle plan for the same load trace. The slices must be
// index-aligned (one entry per policy interval).
func (c OracleConfig) ScoreAgainstOracle(policyPools []int, loads []float64) OracleScore {
	oracle := c.OraclePlan(loads)
	n := len(oracle)
	if len(policyPools) < n {
		n = len(policyPools)
	}
	var s OracleScore
	var sum float64
	var cnt int
	var csum float64
	run := 0
	for i := 0; i < n; i++ {
		if oracle[i] <= 0 {
			run = 0
			continue
		}
		gap := math.Abs(float64(policyPools[i]-oracle[i])) / float64(oracle[i])
		sum += gap
		cnt++
		if i > 0 && oracle[i] == oracle[i-1] {
			run++
		} else {
			run = 1
		}
		if run >= StableRun {
			csum += gap
			s.ConvergedWindows++
		}
	}
	if cnt > 0 {
		s.MeanGapPct = 100 * sum / float64(cnt)
	}
	if s.ConvergedWindows > 0 {
		s.ConvergedGapPct = 100 * csum / float64(s.ConvergedWindows)
	}
	return s
}

// SiriusStaticCards sizes the Sirius comparator for the same trace:
// enough cards for the peak load at the target utilization, then
// doubled because every state change is replicated in-line to a
// paired secondary. This is the pool a non-elastic design holds for
// the whole day to survive the peak.
func (c OracleConfig) SiriusStaticCards(loads []float64) int {
	peak := 0.0
	for _, l := range loads {
		if l > peak {
			peak = l
		}
	}
	n := c.PoolFor(peak)
	return 2 * n
}
