package chaos

import (
	"testing"

	"nezha/internal/sim"
)

// TestControllerCrashSoak is the acceptance sweep for controller
// crash-recovery: 25 independently seeded campaigns, each of which
// kills and journal-recovers the controller mid-run on top of the
// generated fault schedule, rotating through the three crash
// placements — fixed mid-run time, inside the first prepare window,
// and dead in the commit gap between the gateway flip and its ack.
// Every crash-recovery invariant (epoch monotonicity, no duplicate
// replay, recovery bound) plus the full standard set must hold, and
// the sweep must actually exercise recovery: every campaign completes
// at least one recovery and moves client traffic.
func TestControllerCrashSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("controller-crash soak takes minutes; skipped in -short")
	}
	seeds := make([]int64, 0, soakSeeds)
	if *chaosSeed != 0 {
		seeds = append(seeds, *chaosSeed)
	} else {
		for s := int64(1); s <= soakSeeds; s++ {
			seeds = append(seeds, s)
		}
	}
	var completed, recoveries uint64
	for _, seed := range seeds {
		cfg := CampaignConfig{Seed: seed}
		var mode string
		switch seed % 3 {
		case 0:
			cfg.CtrlCrash = true
			mode = "fixed-time"
		case 1:
			cfg.CtrlCrashOnPrepare = true
			mode = "on-prepare"
		default:
			cfg.CtrlCrashAtCommitGap = true
			mode = "commit-gap"
		}
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("seed %d (%s): campaign failed to build: %v", seed, mode, err)
		}
		completed += rep.Completed
		recoveries += rep.Recoveries
		if rep.Completed == 0 {
			t.Errorf("seed %d (%s): no client exchange completed; the campaign exercised nothing", seed, mode)
		}
		if rep.Recoveries == 0 {
			t.Errorf("seed %d (%s): controller never recovered; the crash schedule exercised nothing", seed, mode)
		}
		if rep.Failed() {
			t.Errorf("seed %d (%s): %d invariant violation(s); reproduce with:\n\tgo test ./internal/chaos -run ControllerCrashSoak -chaos.seed=%d",
				seed, mode, len(rep.Violations), seed)
			for _, v := range rep.Violations {
				t.Logf("seed %d: %v", seed, v)
			}
			t.Logf("seed %d schedule:", seed)
			for _, a := range rep.Schedule {
				t.Logf("  %v", a)
			}
		}
	}
	if *chaosSeed == 0 {
		t.Logf("controller-crash sweep: recoveries=%d completed=%d", recoveries, completed)
	}
}

// TestSkipReconcileNegativeControl proves the crash-recovery
// invariants have teeth: a crash landed in the commit gap (gateway
// flipped, resolve unjournaled) whose recovery skips live-world
// reconciliation blindly rolls the committed offload back, tearing the
// FE tables out from under the gateway's live route. At least one seed
// must record a violation — no-blackhole is the expected catch — or
// the crash soak above proves nothing about reconciliation.
func TestSkipReconcileNegativeControl(t *testing.T) {
	fired := false
	for seed := int64(1); seed <= 10 && !fired; seed++ {
		rep, err := RunCampaign(CampaignConfig{
			Seed:                 seed,
			CtrlCrashAtCommitGap: true,
			SkipReconcile:        true,
		})
		if err != nil {
			t.Fatalf("seed %d: campaign failed to build: %v", seed, err)
		}
		if rep.Recoveries == 0 {
			continue // offload never committed: the gap never opened
		}
		for _, v := range rep.Violations {
			fired = true
			t.Logf("seed %d: invariant fired as expected: %v", seed, v)
			break
		}
	}
	if !fired {
		t.Fatal("reconciliation skipped after a commit-gap crash but no invariant fired — recovery correctness is unverified")
	}
}

// TestCrashRecoveryDecisionLogSuffix pins the strongest recovery
// property the deterministic rig affords: a controller that crashes
// and recovers from its journal must go on to make byte-for-byte the
// decisions a crash-free control run makes. Controller RPC traffic
// never touches the data path (pure latency fabric, flow-directed
// control packets, RoleCtrl profiler charges excluded from policy
// windows), so the workload the policy observes is identical in both
// runs; the crash is placed in the ramp before the first decision
// (control decides first at t=13.5s) so the single misaligned
// post-revive window — the rebuilt reader is primed at the revive
// instant, off a tick boundary — rolls out of the 6-window history
// (by ~13.1s) before any decision consumes it. The post-recovery
// suffix that must match is therefore the ENTIRE log; any divergence
// means recovery rehydrated the policy engine or the attribution
// reader incorrectly.
func TestCrashRecoveryDecisionLogSuffix(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario pair takes a while; skipped in -short")
	}
	const (
		seed = int64(1)
		// Revive at 9.6s, between ticks, so the revive event and a policy
		// tick never race at the same instant.
		crashAt = 8500 * sim.Millisecond
		outage  = 1100 * sim.Millisecond
	)
	control, err := RunScenario(ScenarioConfig{Seed: seed, Profile: ProfileFestival})
	if err != nil {
		t.Fatalf("control scenario: %v", err)
	}
	crashed, err := RunScenario(ScenarioConfig{
		Seed: seed, Profile: ProfileFestival,
		CtrlCrashAt: crashAt, CtrlOutage: outage,
	})
	if err != nil {
		t.Fatalf("crashed scenario: %v", err)
	}
	if control.Failed() {
		t.Fatalf("control run violated invariants: %v", control.Violations)
	}
	if crashed.Failed() {
		t.Fatalf("crashed run violated invariants: %v", crashed.Violations)
	}
	if crashed.Recoveries != 1 {
		t.Fatalf("crashed run recoveries = %d, want 1", crashed.Recoveries)
	}
	if crashed.PolicyBackoffs == 0 {
		t.Error("policy loop never backed off during the outage; the crash window exercised nothing")
	}
	if len(control.DecisionLog) == 0 {
		t.Fatal("control run made no decisions; the comparison is vacuous")
	}
	if len(crashed.DecisionLog) != len(control.DecisionLog) {
		t.Fatalf("decision count diverged: control=%d crashed=%d\ncontrol: %v\ncrashed: %v",
			len(control.DecisionLog), len(crashed.DecisionLog), control.DecisionLog, crashed.DecisionLog)
	}
	for i := range control.DecisionLog {
		if control.DecisionLog[i] != crashed.DecisionLog[i] {
			t.Errorf("decision %d diverged:\n  control: %s\n  crashed: %s",
				i, control.DecisionLog[i], crashed.DecisionLog[i])
		}
	}
}

// TestCommitGapCrashAdoptsIntent pins the reconciliation direction for
// the hardest window: the crash lands after the gateway installed the
// flip but before the ack reached the controller, so the journal holds
// an open intent whose commit DID land. Recovery must adopt it — the
// vNIC ends the run offloaded at the committed epoch — rather than
// rolling back the prepare and stranding the gateway's route.
func TestCommitGapCrashAdoptsIntent(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{Seed: 1, CtrlCrashAtCommitGap: true})
	if err != nil {
		t.Fatalf("campaign failed to build: %v", err)
	}
	if rep.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (the commit gap never opened)", rep.Recoveries)
	}
	if rep.Failed() {
		t.Fatalf("invariants violated: %v", rep.Violations)
	}
	if rep.Completed == 0 {
		t.Fatal("no client exchange completed")
	}
}
