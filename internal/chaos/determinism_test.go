package chaos

import "testing"

// TestCampaignDeterminism is the regression guard for the repo's
// determinism contract under chaos: the same seed and config must
// produce a bit-identical end-state digest across runs. Any wall-clock
// read, map-iteration-order dependency, or un-seeded randomness on the
// fault path shows up here as a digest mismatch.
func TestCampaignDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 11, 19} {
		cfg := CampaignConfig{Seed: seed}
		a, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("seed %d run 1: %v", seed, err)
		}
		b, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("seed %d run 2: %v", seed, err)
		}
		if a.Digest != b.Digest {
			t.Errorf("seed %d: digest diverged across identical runs: %#x vs %#x", seed, a.Digest, b.Digest)
		}
		if a.Completed != b.Completed || a.Declared != b.Declared || a.Failovers != b.Failovers {
			t.Errorf("seed %d: summary counters diverged: run1=%+v run2=%+v", seed, a, b)
		}
		if len(a.Schedule) != len(b.Schedule) {
			t.Errorf("seed %d: generated schedules differ in length: %d vs %d", seed, len(a.Schedule), len(b.Schedule))
		}
	}
}

// TestDifferentSeedsDiverge is the digest's own sanity check: if two
// different seeds produce the same digest, the digest is not actually
// capturing the run.
func TestDifferentSeedsDiverge(t *testing.T) {
	a, err := RunCampaign(CampaignConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(CampaignConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Errorf("seeds 5 and 6 produced identical digests (%#x); digest is not sensitive to the run", a.Digest)
	}
}
