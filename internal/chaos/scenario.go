package chaos

import (
	"fmt"
	"math"

	"nezha/internal/baseline"
	"nezha/internal/cluster"
	"nezha/internal/controller"
	"nezha/internal/journal"
	"nezha/internal/metrics"
	"nezha/internal/monitor"
	"nezha/internal/obs"
	"nezha/internal/packet"
	"nezha/internal/policy"
	"nezha/internal/prof"
	"nezha/internal/sim"
	"nezha/internal/slo"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
	"nezha/internal/workload"
)

// This file is the long-horizon scenario harness for the self-driving
// policy loop: deterministic diurnal and shopping-festival load shapes
// driven through a policy-operated cluster, scored against the offline
// oracle (full-trace hindsight pool plan) and a Sirius-style static
// pool, with the standard chaos invariants plus a policy_thrash
// invariant watching the engine's own flip record.

// ScenarioProfile selects the load shape.
type ScenarioProfile int

// Profiles.
const (
	// ProfileDiurnal is one full raised-cosine day: trough at both
	// ends, peak mid-run.
	ProfileDiurnal ScenarioProfile = iota
	// ProfileFestival is the diurnal shape capped at 60% amplitude
	// with a sudden full-peak plateau over [0.6, 0.8] of the run — the
	// shopping-festival surge the paper sizes elasticity against.
	ProfileFestival
)

func (p ScenarioProfile) String() string {
	switch p {
	case ProfileDiurnal:
		return "diurnal"
	case ProfileFestival:
		return "festival"
	default:
		return fmt.Sprintf("profile(%d)", int(p))
	}
}

// ScenarioConfig parameterizes one seeded policy scenario. Everything
// derives from Seed; the same config must produce byte-identical
// decision logs.
type ScenarioConfig struct {
	Seed    int64
	Profile ScenarioProfile
	// Duration is the virtual day (default 40 s).
	Duration sim.Time
	// Servers is the region size (default 16: BE + clients + FE
	// headroom for the MaxFEs=8 peak pool).
	Servers int
	// Clients is the number of open-loop CRR clients (default 3).
	Clients int
	// BaseCPS / PeakCPS are the total open rates across all clients at
	// trough and peak (defaults 150 / 1500).
	BaseCPS, PeakCPS float64
	// RateEvery paces the load-shape updates (default 250 ms).
	RateEvery sim.Time
	// Policy overrides the scenario-calibrated policy config.
	Policy *policy.Config
	// ThrashProne replaces the hysteresis knobs with a deliberately
	// unstable configuration (overlapping bands, zero cooldown) — the
	// negative control that must trip the policy_thrash invariant.
	ThrashProne bool
	// ThrashBound is the policy_thrash invariant's tolerance (default
	// 0: any self-reported thrash event is a violation).
	ThrashBound int
	// Flaps injects that many link flaps across the run (satellite
	// churn for the hysteresis property test).
	Flaps int
	// CtrlCrashAt, when positive, crashes the controller at that time
	// and recovers it after CtrlOutage (default 1 s). The policy loop
	// backs off during the outage and resumes from journal-rehydrated
	// cooldown state with a freshly primed attribution reader.
	CtrlCrashAt sim.Time
	// CtrlOutage is how long the controller stays dead (0 = 1 s).
	CtrlOutage sim.Time
	// CheckEvery paces invariant evaluation (default 50 ms).
	CheckEvery sim.Time
	// Scheduler picks the event-queue implementation.
	Scheduler sim.SchedulerKind
	// Hist, when non-nil, is the ops-surface history store: the rig
	// gains an obs bundle, a per-virtual-second snapshot publisher, the
	// policy decision log, and invariant mirroring, so an opsapi server
	// can serve the scenario live. Publishing is observer-only; the
	// decision log and digest stay byte-identical to a run without it.
	Hist *obs.History
	// SLO enables the latency SLO tracker on every vSwitch. Like Hist,
	// it is observer-only: the decision log must stay byte-identical to
	// a run without it.
	SLO bool
}

// ScenarioResult is one scenario's outcome.
type ScenarioResult struct {
	Seed    int64
	Profile ScenarioProfile

	// Decisions / DecisionLog are the engine's full output; the log
	// lines are the golden-file regression handle.
	Decisions   []policy.Decision
	DecisionLog []string

	// Loads / Pools / OraclePlan are index-aligned per-interval traces:
	// relocatable cycles/s the policy observed, the actual FE pool, and
	// the hindsight plan for the same loads.
	Loads      []float64
	Pools      []int
	OraclePlan []int

	// Score compares Pools to OraclePlan from the first offloaded
	// window onward (the pre-offload ramp is the policy's cold start,
	// not a sizing error).
	Score baseline.OracleScore
	// SiriusCards is the static pool the Sirius comparator would hold
	// all day for the same trace (peak-sized, doubled for replication).
	SiriusCards int

	ThrashCount int
	Violations  []Violation
	Completed   uint64
	// Recoveries / PolicyBackoffs summarize a controller-crash episode:
	// completed recoveries and policy ticks skipped during the outage.
	Recoveries     uint64
	PolicyBackoffs uint64
	// P99RampMicros is the p99 connection latency restricted to ramp
	// phases (|load slope| above half its theoretical max), where an
	// under-provisioned pool shows up first.
	P99RampMicros float64
	// P99Micros is the whole-run p99.
	P99Micros float64
	// Digest fingerprints the decision log + pool trace (FNV-1a).
	Digest uint64
}

// Failed reports whether any invariant broke.
func (r ScenarioResult) Failed() bool { return len(r.Violations) > 0 }

// ScenarioView is the JSON-serializable scenario summary served by the
// ops surface at /api/v1/chaos/report.
type ScenarioView struct {
	Seed        int64    `json:"seed"`
	Profile     string   `json:"profile"`
	Failed      bool     `json:"failed"`
	Violations  []string `json:"violations,omitempty"`
	Digest      uint64   `json:"digest"`
	Completed   uint64   `json:"completed"`
	ThrashCount int      `json:"thrash_count"`
	Recoveries  uint64   `json:"recoveries,omitempty"`
	P99Micros   float64  `json:"p99_micros"`
}

// View flattens the result for JSON serving.
func (r ScenarioResult) View() ScenarioView {
	v := ScenarioView{
		Seed:        r.Seed,
		Profile:     r.Profile.String(),
		Failed:      r.Failed(),
		Digest:      r.Digest,
		Completed:   r.Completed,
		ThrashCount: r.ThrashCount,
		Recoveries:  r.Recoveries,
		P99Micros:   r.P99Micros,
	}
	for _, viol := range r.Violations {
		v.Violations = append(v.Violations, viol.String())
	}
	return v
}

// ScenarioPolicyConfig is the policy calibration for the scaled
// scenario rig (2-core 500 MHz vSwitches). A connection's relocatable
// share (slow path + session installs, both roles) measures ~260
// kcycles on this rig, so the server vNIC's load runs ~40 MHz at the
// 150 CPS trough and ~390 MHz at the 1500 CPS peak. The budgets put
// the offload trigger near 400 CPS — well above every client vNIC's
// ceiling, so only the server vNIC pools — and size FEs so the peak
// wants a 9-FE pool at 40% target utilization.
func ScenarioPolicyConfig() policy.Config {
	cfg := policy.Config{
		Interval:       500 * sim.Millisecond,
		Windows:        6,
		Horizon:        sim.Second,
		BECapacityHz:   150e6,
		FECapacityHz:   120e6,
		TargetUtil:     0.40,
		OffloadHigh:    0.70,
		FallbackLow:    0.05,
		MinFEs:         4,
		MaxFEs:         10,
		ScaleInSlack:   0,
		ScaleInUtilBar: 0.60,
		SustainWindows: 2,
		FlipCooldown:   5 * sim.Second,
		ScaleCooldown:  2 * sim.Second,
	}
	return cfg
}

// thrashPronePolicyConfig deliberately overlaps the hysteresis bands
// (fallback edge above the offload edge) and zeroes the flip cooldown,
// so any load inside the overlap band flips the vNIC every sustain
// interval. ThrashWindow stays armed: the engine must convict itself.
func thrashPronePolicyConfig() policy.Config {
	cfg := ScenarioPolicyConfig()
	cfg.OffloadHigh = 0.05
	cfg.FallbackLow = 0.60
	cfg.SustainWindows = 1
	cfg.FlipCooldown = 0
	cfg.ThrashWindow = 10 * sim.Second
	return cfg
}

// policyThrash is the invariant over the engine's thrash self-report:
// more than bound offload→fallback→offload triples inside one
// ThrashWindow means the hysteresis/cooldown stack failed.
type policyThrash struct {
	eng   *policy.Engine
	bound int
}

// PolicyThrash builds the invariant.
func PolicyThrash(eng *policy.Engine, bound int) Invariant {
	return &policyThrash{eng: eng, bound: bound}
}

func (c *policyThrash) Name() string { return "policy_thrash" }

func (c *policyThrash) Check(now sim.Time) error {
	if ts := c.eng.ThrashEvents(); len(ts) > c.bound {
		return fmt.Errorf("policy thrashed %d time(s) (bound %d); first: %v", len(ts), c.bound, ts[0])
	}
	return nil
}

// scenarioRate evaluates the load shape at t.
func scenarioRate(p ScenarioProfile, t, dur sim.Time, base, peak float64) float64 {
	frac := float64(t) / float64(dur)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	diurnal := 0.5 * (1 - math.Cos(2*math.Pi*frac))
	switch p {
	case ProfileFestival:
		r := base + (peak-base)*0.6*diurnal
		if frac >= 0.6 && frac < 0.8 {
			r = peak
		}
		return r
	default:
		return base + (peak-base)*diurnal
	}
}

// scenarioSlope is d(rate)/dt of the shape, for ramp-phase detection.
func scenarioSlope(p ScenarioProfile, t, dur sim.Time, base, peak float64) float64 {
	eps := dur / 1000
	r1 := scenarioRate(p, t+eps, dur, base, peak)
	r0 := scenarioRate(p, t, dur, base, peak)
	return (r1 - r0) / eps.Seconds()
}

// RunScenario builds the rig, drives the load shape, and scores the
// policy. The rig mirrors the chaos campaign (BE on server 0, CRR
// clients on 1..Clients) but no offload is forced: every transition is
// the policy loop's decision.
func RunScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 40 * sim.Second
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 16
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 3
	}
	if cfg.Clients > cfg.Servers-1 {
		return ScenarioResult{}, fmt.Errorf("chaos: %d clients need %d servers, have %d", cfg.Clients, cfg.Clients+1, cfg.Servers)
	}
	if cfg.BaseCPS <= 0 {
		cfg.BaseCPS = 150
	}
	if cfg.PeakCPS <= 0 {
		cfg.PeakCPS = 1500
	}
	if cfg.RateEvery <= 0 {
		cfg.RateEvery = 250 * sim.Millisecond
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 50 * sim.Millisecond
	}

	polCfg := ScenarioPolicyConfig()
	if cfg.ThrashProne {
		polCfg = thrashPronePolicyConfig()
	}
	if cfg.Policy != nil {
		polCfg = *cfg.Policy
	}

	monCfg := monitor.DefaultConfig(cluster.MonitorAddr)
	monCfg.ProbeInterval = 200 * sim.Millisecond
	detectWindow := monCfg.ProbeInterval*sim.Time(monCfg.Misses+2) + 500*sim.Millisecond

	ctrlCfg := controller.DefaultConfig()
	ctrlCfg.PrepareQuorumFrac = 0.5
	ctrlCfg.InitialFEs = polCfg.MinFEs
	ctrlCfg.MinFEs = polCfg.MinFEs

	pr := prof.New()
	var ob *obs.Obs
	if cfg.Hist != nil {
		// Tracing stays off (SampleRate 0): the ops surface needs the
		// registry, spans, and flows — not per-packet flights.
		ob = obs.New(obs.Options{Seed: cfg.Seed})
	}
	var tracker *slo.Tracker
	if cfg.SLO {
		tracker = slo.NewTracker(slo.Config{})
	}
	c := cluster.New(cluster.Options{
		Servers:   cfg.Servers,
		Seed:      cfg.Seed,
		Scheduler: cfg.Scheduler,
		VSwitch: func(i int, vc *vswitch.Config) {
			vc.Cores = 2
			vc.CoreHz = 500_000_000
		},
		Controller: ctrlCfg,
		Monitor:    monCfg,
		Obs:        ob,
		Prof:       pr,
		Policy:     &polCfg,
		SLO:        tracker,
	})
	if cfg.Hist != nil {
		if pub := c.NewOpsPublisher(cfg.Hist, 10); pub != nil {
			pub.Attach(c.Loop)
		}
	}

	// Server (BE) VM on server 0, clients on 1..Clients — the campaign
	// rig, minus the forced offload.
	serverNet := tables.MakePrefix(campaignServerIP(), 24)
	_, err := c.AddVM(cluster.VMSpec{
		Server: 0, VNIC: campaignVNIC, VPC: campaignVPC, IP: campaignServerIP(), VCPUs: 64,
		MakeRules: func() *tables.RuleSet {
			rs := tables.NewRuleSet(campaignVNIC, campaignVPC)
			for i := 0; i < cfg.Clients; i++ {
				rs.Route.Add(tables.MakePrefix(campaignClientIP(i), 32), packet.IPv4(uint32(i+1)))
			}
			return rs
		},
	})
	if err != nil {
		return ScenarioResult{}, err
	}

	rampHist := metrics.NewHistogramCap("ramp-latency-us", 1<<18)
	allHist := metrics.NewHistogramCap("all-latency-us", 1<<18)
	inRamp := false
	maxSlope := math.Pi * (cfg.PeakCPS - cfg.BaseCPS) / cfg.Duration.Seconds()

	var clients []*workload.VM
	var gens []*workload.CRR
	perClient := cfg.BaseCPS / float64(cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		vnic := uint32(i + 1)
		vm, err := c.AddVM(cluster.VMSpec{
			Server: i + 1, VNIC: vnic, VPC: campaignVPC, IP: campaignClientIP(i), VCPUs: 8,
			MakeRules: cluster.TwoSubnetRules(vnic, campaignVPC, serverNet, campaignVNIC),
		})
		if err != nil {
			return ScenarioResult{}, err
		}
		vm.OnComplete = func(lat sim.Time) {
			allHist.Observe(lat.Micros())
			if inRamp {
				rampHist.Observe(lat.Micros())
			}
		}
		clients = append(clients, vm)
		gens = append(gens, workload.NewCRR(c.Loop, c.Loop.Rand(), vm, campaignServerIP(), perClient))
	}

	// The load shape: retarget every generator on a fixed cadence and
	// track whether the shape is ramping (for the p99 bucket).
	rateTicker := c.Loop.Every(cfg.RateEvery, func() {
		now := c.Loop.Now()
		total := scenarioRate(cfg.Profile, now, cfg.Duration, cfg.BaseCPS, cfg.PeakCPS)
		for _, g := range gens {
			g.SetRate(total / float64(cfg.Clients))
		}
		inRamp = math.Abs(scenarioSlope(cfg.Profile, now, cfg.Duration, cfg.BaseCPS, cfg.PeakCPS)) > 0.5*maxSlope
	})

	// Traces: one sample per policy interval, recorded from the same
	// windows the engine consumed.
	var loads []float64
	var pools []int
	c.Policy.SetTrace(func(now sim.Time, w prof.Window, ds []policy.Decision) {
		dt := (w.T1 - w.T0).Seconds()
		var cycles uint64
		for _, v := range w.VNICs {
			if v.VNIC == campaignVNIC {
				cycles += v.RuleCycles + v.SessCycles
			}
		}
		load := 0.0
		if dt > 0 {
			load = float64(cycles) / dt
		}
		loads = append(loads, load)
		pools = append(pools, c.Ctrl.PoolSize(campaignVNIC))
	})

	// Invariants: the standard set plus the policy's own thrash judge.
	rng := sim.NewRand(cfg.Seed ^ 0x6368616f73) // "chaos"
	eng := NewEngine(System{
		Loop: c.Loop, Fab: c.Fab, GW: c.GW, Switches: c.Switches, Mon: c.Mon, Ctrl: c.Ctrl,
	}, rng, Config{
		CheckEvery:   cfg.CheckEvery,
		DetectWindow: detectWindow,
	})
	RegisterStandard(eng)
	eng.Register(PolicyThrash(c.Policy.Engine(), cfg.ThrashBound))
	if cfg.Hist != nil {
		eng.AttachHistory(cfg.Hist)
	}

	if cfg.Flaps > 0 {
		var sched Schedule
		for i := 0; i < cfg.Flaps; i++ {
			a, b := rng.Intn(cfg.Servers), rng.Intn(cfg.Servers)
			if a == b {
				b = (b + 1) % cfg.Servers
			}
			sched = append(sched, Action{
				At:   sim.Second + sim.Time(rng.Float64()*float64(cfg.Duration-2*sim.Second)),
				Kind: ActFlap, A: a, B: b,
				Dur: sim.Time((0.05 + 0.3*rng.Float64()) * float64(sim.Second)),
			})
		}
		eng.Apply(sched)
	}

	if cfg.CtrlCrashAt > 0 {
		jrn := journal.NewMem()
		c.Ctrl.AttachJournal(jrn)
		c.Policy.SetJournal(jrn)
		outage := cfg.CtrlOutage
		if outage <= 0 {
			outage = sim.Second
		}
		// At revive, rebuild the policy half of the crashed process:
		// cooldown state rehydrated from the journal (observation history
		// is deliberately dropped — the engine re-observes before acting)
		// and a fresh attribution reader primed at the revive instant so
		// its first window is an exact delta, not cumulative-since-boot.
		eng.SetCtrlReviveHook(func(now sim.Time) {
			if recs, err := jrn.Replay(); err == nil {
				c.Policy.Engine().Restore(recs)
			}
			src := prof.NewSeriesReader(pr)
			src.Prime(now)
			c.Policy.SetSource(src)
		})
		eng.ArmControllerCrash(cfg.CtrlCrashAt, outage, controller.RecoverOpts{})
	}

	c.Start()
	for _, g := range gens {
		g.Start()
	}
	c.Loop.Run(cfg.Duration)
	for _, g := range gens {
		g.Stop()
	}
	rateTicker.Stop()
	c.Policy.Stop()
	// Quiesce so the final check sees a settled system.
	c.Loop.Run(c.Loop.Now() + 2*sim.Second)
	eng.CheckNow()

	pe := c.Policy.Engine()
	res := ScenarioResult{
		Seed:        cfg.Seed,
		Profile:     cfg.Profile,
		Decisions:   pe.Decisions(),
		DecisionLog: append([]string(nil), pe.Log()...),
		Loads:       loads,
		Pools:       pools,
		ThrashCount: len(pe.ThrashEvents()),
		Violations:  eng.Violations(),
		Recoveries:  c.Ctrl.Recoveries(),
	}
	res.PolicyBackoffs = c.Policy.Stats.Backoffs
	for _, vm := range clients {
		res.Completed += vm.Completed
	}
	res.P99Micros = allHist.P99()
	res.P99RampMicros = rampHist.P99()

	// Oracle scoring from the first offloaded window: before that the
	// policy is still deciding whether to offload at all, which the
	// hindsight plan (always pooled) has no analogue for.
	oc := baseline.OracleConfig{
		FECapacityHz: polCfg.FECapacityHz,
		TargetUtil:   polCfg.TargetUtil,
		MinFEs:       polCfg.MinFEs,
		MaxFEs:       polCfg.MaxFEs,
	}
	res.OraclePlan = oc.OraclePlan(loads)
	first := -1
	for i, p := range pools {
		if p > 0 {
			first = i
			break
		}
	}
	if first >= 0 {
		res.Score = oc.ScoreAgainstOracle(pools[first:], loads[first:])
	}
	res.SiriusCards = oc.SiriusStaticCards(loads)

	d := newDigest()
	for _, line := range res.DecisionLog {
		for i := 0; i < len(line); i++ {
			d.add(uint64(line[i]))
		}
	}
	for _, p := range pools {
		d.add(uint64(p))
	}
	res.Digest = d.sum
	if cfg.Hist != nil {
		cfg.Hist.SetChaosReport(res.View())
	}
	return res, nil
}
