package chaos

import (
	"strings"
	"testing"

	"nezha/internal/sim"
)

// TestSLODoesNotPerturbSimulation guards the observer effect for the
// latency ledger: attaching the SLO tracker must not change the
// simulated behavior — the end-state digest with SLO on must equal
// the digest with SLO off for the same seed, and with the obs layer
// also attached the flight-trace digest must be untouched too.
func TestSLODoesNotPerturbSimulation(t *testing.T) {
	plain, err := RunCampaign(CampaignConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tracked, err := RunCampaign(CampaignConfig{Seed: 9, SLO: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Digest != tracked.Digest {
		t.Errorf("enabling SLO changed the run: digest %#x (off) vs %#x (on)", plain.Digest, tracked.Digest)
	}
	if plain.Completed != tracked.Completed {
		t.Errorf("completed diverged: %d (off) vs %d (on)", plain.Completed, tracked.Completed)
	}
	if tracked.SLOWorstP99 == 0 {
		t.Error("SLO-enabled campaign recorded no latency at all; the ledger is not wired")
	}

	obsOnly, err := RunCampaign(CampaignConfig{Seed: 9, Obs: true})
	if err != nil {
		t.Fatal(err)
	}
	obsSLO, err := RunCampaign(CampaignConfig{Seed: 9, Obs: true, SLO: true})
	if err != nil {
		t.Fatal(err)
	}
	if obsOnly.Digest != obsSLO.Digest {
		t.Errorf("SLO under obs changed the run: digest %#x vs %#x", obsOnly.Digest, obsSLO.Digest)
	}
	if obsOnly.TraceDigest != obsSLO.TraceDigest {
		t.Errorf("SLO under obs changed the flight traces: %#x vs %#x", obsOnly.TraceDigest, obsSLO.TraceDigest)
	}
}

// TestScenarioDecisionLogUnchangedBySLO is the same observer-effect
// pin for the policy scenario harness: the decision log — the
// golden-file regression handle — must stay byte-identical with the
// latency ledger attached.
func TestScenarioDecisionLogUnchangedBySLO(t *testing.T) {
	cfg := ScenarioConfig{Seed: 3, Profile: ProfileDiurnal, Duration: 12 * sim.Second}
	base, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withSLO := cfg
	withSLO.SLO = true
	tracked, err := RunScenario(withSLO)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(tracked.DecisionLog, "\n"), strings.Join(base.DecisionLog, "\n"); got != want {
		t.Errorf("decision log diverged with SLO attached:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if base.Digest != tracked.Digest {
		t.Errorf("scenario digest diverged: %016x vs %016x", base.Digest, tracked.Digest)
	}
}

// TestSLOCleanAcrossSeeds soaks the slo-burn-bound invariant against
// ordinary fault campaigns: with the default (lenient) objective, the
// standard schedules must not trip it — transient burns during crash
// detection and failover recover within the streak allowance.
func TestSLOCleanAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep, err := RunCampaign(CampaignConfig{Seed: seed, SLO: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			if v.Invariant == "slo-burn-bound" {
				t.Errorf("seed %d: burn invariant fired on an ordinary campaign: %v", seed, v)
			}
		}
	}
}

// TestOverloadedVNICP99Spike is the acceptance scenario: a campaign
// whose clients deliberately overrun the BE's vSwitch must reproduce
// a p99 spike on the server vNIC, visible through the tracker's
// worst-offender report.
func TestOverloadedVNICP99Spike(t *testing.T) {
	objective := 2 * sim.Millisecond
	baseline, err := RunCampaign(CampaignConfig{
		Seed: 5, Duration: 4 * sim.Second,
		SLO: true, SLOObjective: objective,
	})
	if err != nil {
		t.Fatal(err)
	}
	overloaded, err := RunCampaign(CampaignConfig{
		Seed: 5, Duration: 4 * sim.Second, RatePerClient: 2500,
		SLO: true, SLOObjective: objective,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("worst p99: baseline %v (vnic %d), overloaded %v (vnic %d)",
		baseline.SLOWorstP99, baseline.SLOWorstVNIC,
		overloaded.SLOWorstP99, overloaded.SLOWorstVNIC)
	if overloaded.SLOWorstP99 <= sim.Time(objective) {
		t.Errorf("overloaded campaign p99 %v never crossed the %v objective", overloaded.SLOWorstP99, objective)
	}
	if overloaded.SLOWorstP99 < 2*baseline.SLOWorstP99 {
		t.Errorf("overload p99 %v is not a spike over baseline %v", overloaded.SLOWorstP99, baseline.SLOWorstP99)
	}
	if overloaded.SLOBurnEvents == 0 {
		t.Error("sustained overload produced no burn events")
	}
}
