package chaos

import (
	"fmt"

	"nezha/internal/controller"
	"nezha/internal/packet"
	"nezha/internal/sim"
)

// This file extends the fault engine to the one component PRs 1-2 left
// outside the failure domain: the controller itself. A crash episode
// kills the controller process (Controller.Crash — loops stop, RPC
// abandoned, memory wiped) and revives it after the outage through
// Controller.Recover, which replays the journal and reconciles against
// the live world. While the controller is down, agents keep serving
// the last committed config and the monitor's declarations buffer —
// exactly the window the crash-recovery invariants below watch.

// ctrlOutage records one controller crash/revive episode for the
// recovery-bound invariant and the failover-bound deadline adjustment.
type ctrlOutage struct {
	start    sim.Time
	reviveAt sim.Time
	// recoverErr is a Recover() failure at revive time (nil otherwise).
	recoverErr error
	// revived flips when the revive event has run.
	revived bool
	// judged marks episodes the recovery-bound invariant has evaluated.
	judged bool
}

// SetCtrlReviveHook installs a callback run at revive time, immediately
// before Controller.Recover. The scenario harness uses it to rebuild
// the policy loop's half of the crashed process: restore the engine's
// cooldown state from the journal and hand the loop a freshly primed
// attribution reader.
func (e *Engine) SetCtrlReviveHook(fn func(now sim.Time)) { e.ctrlReviveHook = fn }

// ArmControllerCrash schedules one controller crash at time at, with
// revive-and-recover after outage. opts passes through to Recover —
// campaigns set SkipReconcile for the negative control that must trip
// the no-blackhole invariant.
func (e *Engine) ArmControllerCrash(at, outage sim.Time, opts controller.RecoverOpts) {
	if e.sys.Ctrl == nil {
		return
	}
	e.sys.Loop.Schedule(at-e.sys.Loop.Now(), func() {
		e.crashCtrl(outage, opts)
	})
}

// ArmControllerCrashOnPrepare arms a one-shot controller crash aimed at
// the recovery path's hardest window: the gap between journaling a txn
// intent and resolving it. On the first prepare the controller starts,
// the crash lands after a short random delay — across seeds this
// samples both sides of the commit point, so recovery must sometimes
// roll the prepare back and sometimes adopt a gateway flip the dead
// incarnation never heard the ack for.
//
// Uses the controller's single prepare-hook slot; do not combine with
// ArmMidPushKill in one campaign.
func (e *Engine) ArmControllerCrashOnPrepare(outage sim.Time, opts controller.RecoverOpts) {
	ctrl := e.sys.Ctrl
	if ctrl == nil {
		return
	}
	armed := true
	ctrl.SetPrepareHook(func(vnic uint32, targets []packet.IPv4) {
		if !armed {
			return
		}
		armed = false
		delay := sim.Time(e.rng.Float64() * float64(50*sim.Millisecond))
		e.sys.Loop.Schedule(delay, func() {
			e.crashCtrl(outage, opts)
		})
	})
}

// ArmControllerCrashAtCommitGap crashes the controller in the exact
// window where a crash is least forgivable: the gateway has installed
// vnic's new epoch but the controller has not yet journaled the
// resolve (the gateway-flip ack is still on the wire). A loop observer
// watches for the gateway epoch moving past its starting point while
// the controller still considers the vNIC un-offloaded — precisely the
// commit gap — and schedules the crash at zero delay, which the event
// loop runs before the in-flight ack can land. Recovery then holds an
// open intent whose commit DID reach the world: reconciliation must
// adopt it, and the SkipReconcile negative control, which blindly
// rolls it back, must blackhole the gateway's live route.
func (e *Engine) ArmControllerCrashAtCommitGap(vnic uint32, outage sim.Time, opts controller.RecoverOpts) {
	ctrl, gw := e.sys.Ctrl, e.sys.GW
	if ctrl == nil || gw == nil {
		return
	}
	base := gw.Epoch(vnic)
	armed := true
	e.sys.Loop.Observe(func(now sim.Time) {
		if !armed || !ctrl.ControllerUp() {
			return
		}
		if gw.Epoch(vnic) > base && !ctrl.Offloaded(vnic) {
			armed = false
			// Observers must not mutate the world directly; a zero-delay
			// event still beats the gateway ack (scheduled a fabric
			// latency ahead).
			e.sys.Loop.Schedule(0, func() {
				e.crashCtrl(outage, opts)
			})
		}
	})
}

// crashCtrl executes one crash/revive episode.
func (e *Engine) crashCtrl(outage sim.Time, opts controller.RecoverOpts) {
	ctrl := e.sys.Ctrl
	if ctrl == nil || !ctrl.ControllerUp() {
		return // overlapping schedule; the first episode governs
	}
	now := e.sys.Loop.Now()
	e.ob.Event(now, "chaos-ctrl-crash", 0, 0, "outage=%v skip_reconcile=%v", outage, opts.SkipReconcile)
	ctrl.Crash()
	o := &ctrlOutage{start: now, reviveAt: now + outage}
	e.ctrlOutages = append(e.ctrlOutages, o)
	e.sys.Loop.Schedule(outage, func() {
		if e.ctrlReviveHook != nil {
			e.ctrlReviveHook(e.sys.Loop.Now())
		}
		o.recoverErr = ctrl.Recover(opts)
		o.revived = true
	})
}

// ctrlDeadline stretches a failover-bound deadline past any controller
// outage that overlaps it: declarations buffered while the controller
// is down are only drained at recovery, so the rebalance half of the
// bound restarts from the recovery's end. The second return is true
// while an overlapping recovery is still in flight (judgment must
// wait).
func (e *Engine) ctrlDeadline(start, deadline sim.Time, window sim.Time) (sim.Time, bool) {
	for _, o := range e.ctrlOutages {
		if o.start > deadline {
			continue // outage began after the bound already expired
		}
		_, end, ok := e.sys.Ctrl.LastRecovery()
		if !o.revived || !ok || end == 0 {
			return deadline, true // recovery in flight: not judgeable yet
		}
		if end >= start && end+window > deadline {
			deadline = end + window
		}
	}
	return deadline, false
}

// --- Crash-recovery invariants ----------------------------------------

type ctrlEpochMonotonic struct {
	sys  System
	last map[uint32]uint64
}

// CtrlEpochMonotonic checks that a vNIC's config epoch, as the
// controller reports it, never moves backward — including across a
// crash/recover cycle. The journal is written before any RPC that
// could install an epoch, so replay must always land at or above
// anything the dead incarnation pushed; a regression means a mutation
// reached the world unjournaled. Checks are suspended while the
// controller is down (Crash wipes the in-memory epochs; the durable
// ones are the journal's business until Recover replays them).
func CtrlEpochMonotonic(sys System) Invariant {
	return &ctrlEpochMonotonic{sys: sys, last: make(map[uint32]uint64)}
}

func (c *ctrlEpochMonotonic) Name() string { return "ctrl-epoch-monotonic" }

func (c *ctrlEpochMonotonic) Check(now sim.Time) error {
	if !c.sys.Ctrl.ControllerUp() {
		return nil
	}
	var err error
	c.sys.GW.Range(func(vnic uint32, addrs []packet.IPv4, epoch uint64) bool {
		cur := c.sys.Ctrl.Epoch(vnic)
		if last := c.last[vnic]; cur < last {
			err = fmt.Errorf("controller epoch for vNIC %d regressed from %d to %d (recovery lost a journaled epoch)",
				vnic, last, cur)
			return false
		}
		c.last[vnic] = cur
		return true
	})
	return err
}

type noDuplicateReplay struct{ sys System }

// NoDuplicateReplay checks that journal replay re-runs no side effect
// the dead incarnation already landed: every agent fingerprints the
// (op, vNIC, epoch) of each applied mutation against the request ID
// that first applied it, and a second application under a different ID
// is a duplicate. Recovery must converge by re-pushing at FRESH
// epochs, never by blindly re-issuing journaled operations.
func NoDuplicateReplay(sys System) Invariant { return &noDuplicateReplay{sys} }

func (c *noDuplicateReplay) Name() string { return "no-duplicate-replay" }

func (c *noDuplicateReplay) Check(now sim.Time) error {
	if n := c.sys.Ctrl.DupSideEffects(); n > 0 {
		return fmt.Errorf("%d duplicate side effect(s) applied across agents (journal replay re-ran committed work)", n)
	}
	return nil
}

type ctrlRecoveryBound struct{ eng *Engine }

// CtrlRecoveryBound checks that every controller revival completes its
// recovery — journal replay, buffered-event drain, and per-vNIC
// reconciliation — within Config.RecoveryBound of the revive, and that
// Recover itself did not error.
func CtrlRecoveryBound(e *Engine) Invariant { return &ctrlRecoveryBound{eng: e} }

func (c *ctrlRecoveryBound) Name() string { return "ctrl-recovery-bound" }

func (c *ctrlRecoveryBound) Check(now sim.Time) error {
	bound := c.eng.cfg.RecoveryBound
	for _, o := range c.eng.ctrlOutages {
		if o.judged {
			continue
		}
		if o.revived && o.recoverErr != nil {
			o.judged = true
			return fmt.Errorf("controller recovery at %v failed: %v", o.reviveAt, o.recoverErr)
		}
		deadline := o.reviveAt + bound
		if now < deadline {
			continue
		}
		o.judged = true
		_, end, ok := c.eng.sys.Ctrl.LastRecovery()
		if !o.revived || !ok || end == 0 || end > deadline {
			return fmt.Errorf("controller crashed at %v, revived at %v, but recovery had not completed by %v (bound %v)",
				o.start, o.reviveAt, deadline, bound)
		}
	}
	return nil
}
