package chaos

import (
	"os"
	"strings"
	"testing"

	"nezha/internal/prof"
)

// readProfile loads and decodes the profile at path, failing the test
// on any error.
func readProfile(t *testing.T, path string) *prof.DecodedProfile {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading profile dump: %v", err)
	}
	dp, err := prof.DecodeProfile(raw)
	if err != nil {
		t.Fatalf("decoding profile dump %s: %v", path, err)
	}
	return dp
}

// stackHas reports whether any sample's stack contains a frame with
// the given prefix.
func stackHas(dp *prof.DecodedProfile, prefix string) bool {
	for _, s := range dp.Samples {
		for _, f := range s.Stack {
			if strings.HasPrefix(f, prefix) {
				return true
			}
		}
	}
	return false
}

// TestProfDumpOnViolation drives the known-bad configuration with the
// profiler on and requires a decodable pprof profile next to the
// flight-recorder dump: the dump says what broke, the profile says
// where the cycles and bytes were going when it did.
func TestProfDumpOnViolation(t *testing.T) {
	dir := t.TempDir()
	var rep Report
	for seed := int64(1); seed <= 10; seed++ {
		r, err := RunCampaign(CampaignConfig{
			Seed: seed, BypassTwoPhase: true,
			Obs: true, ObsDumpDir: dir,
			Prof: true, ProfDir: dir,
		})
		if err != nil {
			t.Fatalf("seed %d: campaign failed to build: %v", seed, err)
		}
		if r.Failed() {
			rep = r
			break
		}
	}
	if !rep.Failed() {
		t.Fatal("bypassed two-phase commit never violated an invariant; negative control is broken")
	}
	if rep.DumpPath == "" || rep.ProfDumpPath == "" {
		t.Fatalf("violation with obs+prof enabled: dump=%q prof=%q, want both", rep.DumpPath, rep.ProfDumpPath)
	}
	dp := readProfile(t, rep.ProfDumpPath)
	if len(dp.SampleTypes) != 2 {
		t.Fatalf("profile sample types = %v, want cycles+bytes", dp.SampleTypes)
	}
	for _, frame := range []string{"stage:fastpath", "stage:session-install", "vnic:", "node:", "mem:"} {
		if !stackHas(dp, frame) {
			t.Errorf("profile has no %q frame; attribution is missing a dimension", frame)
		}
	}
}

// TestProfDumpOnCleanRun checks a fault-free -prof campaign still
// writes the final profile, so an engineer can feed any run to
// `go tool pprof`.
func TestProfDumpOnCleanRun(t *testing.T) {
	dir := t.TempDir()
	rep, err := RunCampaign(CampaignConfig{Seed: 3, Prof: true, ProfDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed 3 baseline campaign violated invariants: %+v", rep.Violations)
	}
	if rep.ProfDumpPath == "" {
		t.Fatal("clean campaign with ProfDir set wrote no final profile")
	}
	dp := readProfile(t, rep.ProfDumpPath)
	if len(dp.Samples) == 0 {
		t.Fatal("final profile holds no samples — an 8s campaign charged nothing")
	}
	if !stackHas(dp, "stage:ctrl") {
		t.Error("profile missing control-plane attribution (stage:ctrl)")
	}
}

// TestProfDoesNotPerturbSimulation guards the observer effect for the
// profiler: the end-state digest with prof on must equal prof off.
func TestProfDoesNotPerturbSimulation(t *testing.T) {
	plain, err := RunCampaign(CampaignConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := RunCampaign(CampaignConfig{Seed: 11, Prof: true, ProfDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Digest != profiled.Digest {
		t.Errorf("enabling prof changed the run: digest %#x (off) vs %#x (on)", plain.Digest, profiled.Digest)
	}
}
