package chaos

import (
	"flag"
	"testing"
)

// chaosSeed, when non-zero, replays a single campaign seed — the
// reproduction handle a failing soak run prints:
//
//	go test ./internal/chaos -run Soak -chaos.seed=<n>
var chaosSeed = flag.Int64("chaos.seed", 0, "replay a single soak seed instead of the full sweep")

const soakSeeds = 25

// TestSoak runs 25 independently seeded chaos campaigns against the
// BE+FE rig and requires every invariant to hold in all of them. It
// also guards against the soak silently testing nothing: across the
// sweep, crashes must have been declared and failed over at least
// once, and clients must have completed traffic.
func TestSoak(t *testing.T) {
	seeds := make([]int64, 0, soakSeeds)
	if *chaosSeed != 0 {
		seeds = append(seeds, *chaosSeed)
	} else {
		for s := int64(1); s <= soakSeeds; s++ {
			seeds = append(seeds, s)
		}
	}
	var declared, failovers, completed uint64
	for _, seed := range seeds {
		rep, err := RunCampaign(CampaignConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: campaign failed to build: %v", seed, err)
		}
		declared += rep.Declared
		failovers += rep.Failovers
		completed += rep.Completed
		if rep.Completed == 0 {
			t.Errorf("seed %d: no client exchange completed; the campaign exercised nothing", seed)
		}
		if rep.Failed() {
			t.Errorf("seed %d: %d invariant violation(s); reproduce with:\n\tgo test ./internal/chaos -run Soak -chaos.seed=%d",
				seed, len(rep.Violations), seed)
			for _, v := range rep.Violations {
				t.Logf("seed %d: %v", seed, v)
			}
			t.Logf("seed %d schedule:", seed)
			for _, a := range rep.Schedule {
				t.Logf("  %v", a)
			}
		}
	}
	if *chaosSeed == 0 {
		if declared == 0 {
			t.Error("no campaign ever declared a crash — schedules are not exercising failure detection")
		}
		if failovers == 0 {
			t.Error("no campaign ever triggered a controller failover")
		}
		t.Logf("sweep totals: declared=%d failovers=%d completed=%d", declared, failovers, completed)
	}
}

// TestSoakMidPushKill is the acceptance sweep for the transactional
// control plane: every campaign additionally crashes or partitions a
// prepare target in the window between prepare and commit, and the
// no-blackhole invariant must still hold — zero blackholes across the
// sweep.
func TestSoakMidPushKill(t *testing.T) {
	seeds := make([]int64, 0, soakSeeds)
	if *chaosSeed != 0 {
		seeds = append(seeds, *chaosSeed)
	} else {
		for s := int64(1); s <= soakSeeds; s++ {
			seeds = append(seeds, s)
		}
	}
	var completed uint64
	for _, seed := range seeds {
		rep, err := RunCampaign(CampaignConfig{Seed: seed, MidPushKill: true})
		if err != nil {
			t.Fatalf("seed %d: campaign failed to build: %v", seed, err)
		}
		completed += rep.Completed
		if rep.Completed == 0 {
			t.Errorf("seed %d: no client exchange completed; the campaign exercised nothing", seed)
		}
		if rep.Failed() {
			t.Errorf("seed %d: %d invariant violation(s) under mid-push kill; reproduce with:\n\tgo test ./internal/chaos -run SoakMidPushKill -chaos.seed=%d",
				seed, len(rep.Violations), seed)
			for _, v := range rep.Violations {
				t.Logf("seed %d: %v", seed, v)
			}
		}
	}
	if *chaosSeed == 0 {
		t.Logf("mid-push-kill sweep: completed=%d", completed)
	}
}

// TestNoBlackholeNegativeControl proves the no-blackhole invariant
// actually has teeth: with the two-phase commit bypassed (the gateway
// flipped fire-and-forget while FE installs are still in flight), at
// least one campaign must record a no-blackhole violation. If none
// does, the invariant is vacuous and the acceptance sweep above means
// nothing.
func TestNoBlackholeNegativeControl(t *testing.T) {
	fired := false
	for seed := int64(1); seed <= 10 && !fired; seed++ {
		rep, err := RunCampaign(CampaignConfig{Seed: seed, BypassTwoPhase: true})
		if err != nil {
			t.Fatalf("seed %d: campaign failed to build: %v", seed, err)
		}
		for _, v := range rep.Violations {
			if v.Invariant == "no-blackhole" {
				fired = true
				t.Logf("seed %d: invariant fired as expected: %v", seed, v)
				break
			}
		}
	}
	if !fired {
		t.Fatal("two-phase commit bypassed but the no-blackhole invariant never fired — the invariant is not detecting uncommitted routing")
	}
}
