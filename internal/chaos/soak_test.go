package chaos

import (
	"flag"
	"testing"
)

// chaosSeed, when non-zero, replays a single campaign seed — the
// reproduction handle a failing soak run prints:
//
//	go test ./internal/chaos -run Soak -chaos.seed=<n>
var chaosSeed = flag.Int64("chaos.seed", 0, "replay a single soak seed instead of the full sweep")

const soakSeeds = 25

// TestSoak runs 25 independently seeded chaos campaigns against the
// BE+FE rig and requires every invariant to hold in all of them. It
// also guards against the soak silently testing nothing: across the
// sweep, crashes must have been declared and failed over at least
// once, and clients must have completed traffic.
func TestSoak(t *testing.T) {
	seeds := make([]int64, 0, soakSeeds)
	if *chaosSeed != 0 {
		seeds = append(seeds, *chaosSeed)
	} else {
		for s := int64(1); s <= soakSeeds; s++ {
			seeds = append(seeds, s)
		}
	}
	var declared, failovers, completed uint64
	for _, seed := range seeds {
		rep, err := RunCampaign(CampaignConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: campaign failed to build: %v", seed, err)
		}
		declared += rep.Declared
		failovers += rep.Failovers
		completed += rep.Completed
		if rep.Completed == 0 {
			t.Errorf("seed %d: no client exchange completed; the campaign exercised nothing", seed)
		}
		if rep.Failed() {
			t.Errorf("seed %d: %d invariant violation(s); reproduce with:\n\tgo test ./internal/chaos -run Soak -chaos.seed=%d",
				seed, len(rep.Violations), seed)
			for _, v := range rep.Violations {
				t.Logf("seed %d: %v", seed, v)
			}
			t.Logf("seed %d schedule:", seed)
			for _, a := range rep.Schedule {
				t.Logf("  %v", a)
			}
		}
	}
	if *chaosSeed == 0 {
		if declared == 0 {
			t.Error("no campaign ever declared a crash — schedules are not exercising failure detection")
		}
		if failovers == 0 {
			t.Error("no campaign ever triggered a controller failover")
		}
		t.Logf("sweep totals: declared=%d failovers=%d completed=%d", declared, failovers, completed)
	}
}
