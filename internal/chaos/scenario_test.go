package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nezha/internal/policy"
	"nezha/internal/sim"
)

// TestPolicyScenarioSweep is the acceptance sweep for the self-driving
// policy loop: 25 independently seeded long-horizon diurnal days, each
// fully operated by the policy (no forced offload). In every run the
// policy must converge within 20% of the offline oracle's FE-pool
// size, every invariant — no-blackhole included — must hold, and the
// engine must self-report zero thrash.
//
// Reproduce one seed: go test ./internal/chaos -run PolicyScenarioSweep -chaos.seed=<n>
func TestPolicyScenarioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario sweep is not run in -short mode")
	}
	seeds := make([]int64, 0, soakSeeds)
	if *chaosSeed != 0 {
		seeds = append(seeds, *chaosSeed)
	} else {
		for s := int64(1); s <= soakSeeds; s++ {
			seeds = append(seeds, s)
		}
	}
	var completed uint64
	for _, seed := range seeds {
		res, err := RunScenario(ScenarioConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: scenario failed to build: %v", seed, err)
		}
		completed += res.Completed
		if res.Completed == 0 {
			t.Errorf("seed %d: no client exchange completed; the scenario exercised nothing", seed)
		}
		if len(res.Decisions) == 0 {
			t.Errorf("seed %d: the policy never decided anything", seed)
		}
		if res.Score.ConvergedWindows == 0 {
			t.Errorf("seed %d: no converged windows to score — the policy never settled", seed)
		} else if res.Score.ConvergedGapPct > 20 {
			t.Errorf("seed %d: converged oracle gap %.1f%% exceeds the 20%% acceptance bound",
				seed, res.Score.ConvergedGapPct)
		}
		if res.ThrashCount != 0 {
			t.Errorf("seed %d: %d relocation thrash event(s) under the production cooldown", seed, res.ThrashCount)
		}
		if res.Failed() {
			t.Errorf("seed %d: %d invariant violation(s); reproduce with:\n\tgo test ./internal/chaos -run PolicyScenarioSweep -chaos.seed=%d",
				seed, len(res.Violations), seed)
			for _, v := range res.Violations {
				t.Logf("seed %d: %v", seed, v)
			}
		}
	}
	if *chaosSeed == 0 {
		t.Logf("sweep totals: completed=%d", completed)
	}
}

// TestPolicyHysteresisProperty is the hysteresis property test: across
// 25 seeds with link flaps battering the fabric, the policy must never
// emit offload→fallback→offload for the same (vnic, table) inside one
// flip-cooldown window — checked both from the raw decision list (this
// test's own scan) and the engine's self-report.
func TestPolicyHysteresisProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("hysteresis property sweep is not run in -short mode")
	}
	seeds := make([]int64, 0, soakSeeds)
	if *chaosSeed != 0 {
		seeds = append(seeds, *chaosSeed)
	} else {
		for s := int64(1); s <= soakSeeds; s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		res, err := RunScenario(ScenarioConfig{Seed: seed, Flaps: 6})
		if err != nil {
			t.Fatalf("seed %d: scenario failed to build: %v", seed, err)
		}
		cooldown := ScenarioPolicyConfig().FlipCooldown
		// Independent scan: collect flip decisions per (vnic, table) and
		// look for an o→f→o triple completed inside one cooldown.
		flipsBy := make(map[string][]policy.Decision)
		for _, d := range res.Decisions {
			if d.Action == policy.ActOffload || d.Action == policy.ActFallback {
				k := fmt.Sprintf("%d/%s", d.VNIC, d.Table)
				flipsBy[k] = append(flipsBy[k], d)
			}
		}
		for k, fs := range flipsBy {
			for i := 2; i < len(fs); i++ {
				a, b, c := fs[i-2], fs[i-1], fs[i]
				if a.Action == policy.ActOffload && b.Action == policy.ActFallback &&
					c.Action == policy.ActOffload && c.At-a.At <= cooldown {
					t.Errorf("seed %d: %s thrashed within one cooldown: %v / %v / %v", seed, k, a, b, c)
				}
			}
		}
		if res.ThrashCount != 0 {
			t.Errorf("seed %d: engine self-reported %d thrash event(s) under flaps", seed, res.ThrashCount)
		}
	}
}

// TestPolicyThrashNegativeControl proves the policy_thrash invariant
// has teeth: a deliberately thrash-prone configuration (overlapping
// hysteresis bands, zero flip cooldown) must trip it. The load is held
// inside the overlap band the whole run so every window re-flips the
// vNIC.
func TestPolicyThrashNegativeControl(t *testing.T) {
	res, err := RunScenario(ScenarioConfig{
		Seed:        1,
		Duration:    10 * sim.Second,
		ThrashProne: true,
		BaseCPS:     150,
		PeakCPS:     250,
	})
	if err != nil {
		t.Fatalf("scenario failed to build: %v", err)
	}
	if res.ThrashCount == 0 {
		t.Fatal("thrash-prone config produced zero thrash events — the self-report is vacuous")
	}
	fired := false
	for _, v := range res.Violations {
		if v.Invariant == "policy_thrash" {
			fired = true
			t.Logf("invariant fired as expected: %v", v)
			break
		}
	}
	if !fired {
		t.Fatalf("policy thrashed %d time(s) but the policy_thrash invariant never fired", res.ThrashCount)
	}
}

// TestPolicyScenarioDeterminism pins reproducibility: the same seed
// must yield a byte-identical decision log and digest, including under
// the alternate (heap) event scheduler — the decision stream is part
// of the simulation's observable behavior.
func TestPolicyScenarioDeterminism(t *testing.T) {
	base, err := RunScenario(ScenarioConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunScenario(ScenarioConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if base.Digest != again.Digest {
		t.Fatalf("same seed, different digests: %#x vs %#x", base.Digest, again.Digest)
	}
	heap, err := RunScenario(ScenarioConfig{Seed: 7, Scheduler: sim.SchedHeap})
	if err != nil {
		t.Fatal(err)
	}
	if d, h := strings.Join(base.DecisionLog, "\n"), strings.Join(heap.DecisionLog, "\n"); d != h {
		t.Fatalf("heap scheduler produced a different decision log:\ncalendar:\n%s\nheap:\n%s", d, h)
	}
	if base.Digest != heap.Digest {
		t.Fatalf("heap scheduler changed the scenario digest: %#x vs %#x", base.Digest, heap.Digest)
	}
}

// Golden decision logs: the checked-in policy output for a few seeds
// of each profile. Any engine or calibration change shows up here as a
// reviewable diff.
//
// Regenerate (only when a deliberate policy change lands):
//
//	POLICY_GOLDEN_UPDATE=1 go test ./internal/chaos -run PolicyGoldenDecisionLogs
const policyGoldenSeeds = 3

func policyGoldenPath(profile ScenarioProfile, seed int64) string {
	return filepath.Join("testdata", fmt.Sprintf("policy_decisions_%s_seed%d.log", profile, seed))
}

func TestPolicyGoldenDecisionLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden decision logs are not run in -short mode")
	}
	update := os.Getenv("POLICY_GOLDEN_UPDATE") != ""
	for _, profile := range []ScenarioProfile{ProfileDiurnal, ProfileFestival} {
		for seed := int64(1); seed <= policyGoldenSeeds; seed++ {
			res, err := RunScenario(ScenarioConfig{Seed: seed, Profile: profile})
			if err != nil {
				t.Fatalf("%s seed %d: %v", profile, seed, err)
			}
			got := strings.Join(res.DecisionLog, "\n") + "\n"
			path := policyGoldenPath(profile, seed)
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d decisions)", path, len(res.DecisionLog))
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden decision log (generate with POLICY_GOLDEN_UPDATE=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s seed %d: decision log deviates from golden %s\ngot:\n%swant:\n%s",
					profile, seed, path, got, want)
			}
		}
	}
}
