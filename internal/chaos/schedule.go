package chaos

import (
	"fmt"

	"nezha/internal/sim"
)

// ActionKind enumerates fault types a schedule can carry.
type ActionKind int

// Fault kinds.
const (
	// ActLinkFault sets the global loss/jitter model for Dur, then
	// restores the previous model.
	ActLinkFault ActionKind = iota
	// ActPairFault sets a per-link loss/jitter override between
	// switches A and B for Dur.
	ActPairFault
	// ActFlap partitions the pair (A, B) and heals it after Dur.
	ActFlap
	// ActPartitionSweep rolls a partition across A's links: each of
	// the other switches is cut off from A in turn, Dur per link.
	ActPartitionSweep
	// ActCrash crashes switch A and revives it after Dur.
	ActCrash
	// ActMemPressure reserves Bytes of switch A's NIC memory for Dur.
	ActMemPressure
)

func (k ActionKind) String() string {
	switch k {
	case ActLinkFault:
		return "link-fault"
	case ActPairFault:
		return "pair-fault"
	case ActFlap:
		return "flap"
	case ActPartitionSweep:
		return "partition-sweep"
	case ActCrash:
		return "crash"
	case ActMemPressure:
		return "mem-pressure"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one scheduled fault. A and B index into System.Switches.
type Action struct {
	At     sim.Time
	Kind   ActionKind
	A, B   int
	Dur    sim.Time
	Loss   float64
	Jitter sim.Time
	Bytes  int
}

func (a Action) String() string {
	switch a.Kind {
	case ActLinkFault:
		return fmt.Sprintf("t=%v %v loss=%.2f jitter=%v dur=%v", a.At, a.Kind, a.Loss, a.Jitter, a.Dur)
	case ActPairFault:
		return fmt.Sprintf("t=%v %v sw%d<->sw%d loss=%.2f jitter=%v dur=%v", a.At, a.Kind, a.A, a.B, a.Loss, a.Jitter, a.Dur)
	case ActFlap:
		return fmt.Sprintf("t=%v %v sw%d<->sw%d dur=%v", a.At, a.Kind, a.A, a.B, a.Dur)
	case ActPartitionSweep:
		return fmt.Sprintf("t=%v %v around sw%d dur/link=%v", a.At, a.Kind, a.A, a.Dur)
	case ActCrash:
		return fmt.Sprintf("t=%v %v sw%d dur=%v", a.At, a.Kind, a.A, a.Dur)
	case ActMemPressure:
		return fmt.Sprintf("t=%v %v sw%d bytes=%d dur=%v", a.At, a.Kind, a.A, a.Bytes, a.Dur)
	default:
		return fmt.Sprintf("t=%v %v", a.At, a.Kind)
	}
}

// Schedule is a scripted fault sequence.
type Schedule []Action

// Apply schedules every action on the engine's loop. Actions with
// out-of-range switch indices are ignored (a schedule generated for a
// larger rig degrades instead of panicking).
func (e *Engine) Apply(s Schedule) {
	for _, a := range s {
		a := a
		if a.A < 0 || a.A >= len(e.sys.Switches) || a.B < 0 || a.B >= len(e.sys.Switches) {
			continue
		}
		e.sys.Loop.At(a.At, func() { e.execute(a) })
	}
}

func (e *Engine) execute(a Action) {
	loop := e.sys.Loop
	switch a.Kind {
	case ActLinkFault:
		prev := e.global
		e.SetGlobalFault(a.Loss, a.Jitter)
		if a.Dur > 0 {
			loop.Schedule(a.Dur, func() { e.global = prev })
		}
	case ActPairFault:
		ia, ib := e.sys.Switches[a.A].Addr(), e.sys.Switches[a.B].Addr()
		e.SetLinkFault(ia, ib, a.Loss, a.Jitter)
		if a.Dur > 0 {
			loop.Schedule(a.Dur, func() { e.ClearLinkFault(ia, ib) })
		}
	case ActFlap:
		if a.A == a.B {
			return
		}
		ia, ib := e.sys.Switches[a.A].Addr(), e.sys.Switches[a.B].Addr()
		e.sys.Fab.Partition(ia, ib)
		loop.Schedule(a.Dur, func() { e.sys.Fab.Heal(ia, ib) })
	case ActPartitionSweep:
		center := e.sys.Switches[a.A].Addr()
		step := a.Dur
		if step <= 0 {
			step = 50 * sim.Millisecond
		}
		off := sim.Time(0)
		for i, vs := range e.sys.Switches {
			if i == a.A {
				continue
			}
			other := vs.Addr()
			at := off
			loop.Schedule(at, func() { e.sys.Fab.Partition(center, other) })
			loop.Schedule(at+step, func() { e.sys.Fab.Heal(center, other) })
			off += step
		}
	case ActCrash:
		e.crash(a.A, a.Dur)
	case ActMemPressure:
		release, ok := e.sys.Switches[a.A].InjectMemPressure(a.Bytes)
		if ok && a.Dur > 0 {
			loop.Schedule(a.Dur, release)
		}
	}
}

// GenConfig parameterizes the random schedule generator.
type GenConfig struct {
	// Start and Horizon bound action times to [Start, Start+Horizon).
	Start   sim.Time
	Horizon sim.Time
	// Events is how many fault episodes to draw (default 10).
	Events int
	// Switches is the rig size actions index into.
	Switches int
	// MaxLoss caps an episode's loss probability (default 0.25).
	MaxLoss float64
	// MaxJitter caps an episode's jitter (default 200 µs).
	MaxJitter sim.Time
	// DetectWindow shapes crash durations: short blips stay under
	// 0.6× of it, long crashes exceed it comfortably so the
	// failover-bound invariant has something to judge.
	DetectWindow sim.Time
	// MaxConcurrentCrashes bounds simultaneously crashed switches so
	// random schedules exercise failover rather than tripping the
	// widespread-failure guard every time (default 2).
	MaxConcurrentCrashes int
}

// Generate draws a random schedule from rng. The same rng state and
// config always yield the same schedule — seeds are the reproduction
// handle for failing soak runs.
func Generate(rng *sim.Rand, gc GenConfig) Schedule {
	if gc.Events <= 0 {
		gc.Events = 10
	}
	if gc.MaxLoss <= 0 {
		gc.MaxLoss = 0.25
	}
	if gc.MaxJitter <= 0 {
		gc.MaxJitter = 200 * sim.Microsecond
	}
	if gc.MaxConcurrentCrashes <= 0 {
		gc.MaxConcurrentCrashes = 2
	}
	if gc.DetectWindow <= 0 {
		gc.DetectWindow = 2 * sim.Second
	}
	// crashEnd[i] tracks when switch i revives, to bound overlap.
	crashEnd := make([]sim.Time, gc.Switches)
	var s Schedule
	for len(s) < gc.Events {
		at := gc.Start + sim.Time(rng.Float64()*float64(gc.Horizon))
		switch rng.Intn(6) {
		case 0: // global loss episode
			s = append(s, Action{
				At: at, Kind: ActLinkFault,
				Loss:   rng.Float64() * gc.MaxLoss,
				Jitter: sim.Time(rng.Float64() * float64(gc.MaxJitter)),
				Dur:    sim.Time((0.2 + 0.8*rng.Float64()) * float64(sim.Second)),
			})
		case 1: // lossy/jittery single link
			a, b := rng.Intn(gc.Switches), rng.Intn(gc.Switches)
			if a == b {
				continue
			}
			s = append(s, Action{
				At: at, Kind: ActPairFault, A: a, B: b,
				Loss:   rng.Float64() * 2 * gc.MaxLoss, // single links get hit harder
				Jitter: sim.Time(rng.Float64() * float64(gc.MaxJitter)),
				Dur:    sim.Time((0.2 + 1.3*rng.Float64()) * float64(sim.Second)),
			})
		case 2: // link flap
			a, b := rng.Intn(gc.Switches), rng.Intn(gc.Switches)
			if a == b {
				continue
			}
			s = append(s, Action{
				At: at, Kind: ActFlap, A: a, B: b,
				Dur: sim.Time((0.05 + 0.5*rng.Float64()) * float64(sim.Second)),
			})
		case 3: // rolling partition around one switch
			s = append(s, Action{
				At: at, Kind: ActPartitionSweep, A: rng.Intn(gc.Switches),
				Dur: sim.Time((0.02 + 0.1*rng.Float64()) * float64(sim.Second)),
			})
		case 4: // crash/revive
			i := rng.Intn(gc.Switches)
			var dur sim.Time
			if rng.Float64() < 0.5 {
				// Short blip: under the detection window.
				dur = sim.Time(rng.Float64() * 0.6 * float64(gc.DetectWindow))
			} else {
				// Hard crash: the failover bound must fire.
				dur = gc.DetectWindow + sim.Time((0.5+rng.Float64())*float64(sim.Second))
			}
			if crashEnd[i] > at {
				continue // this switch is already scheduled to be down
			}
			concurrent := 0
			for j := range crashEnd {
				if crashEnd[j] > at {
					concurrent++
				}
			}
			if concurrent >= gc.MaxConcurrentCrashes {
				continue
			}
			crashEnd[i] = at + dur
			s = append(s, Action{At: at, Kind: ActCrash, A: i, Dur: dur})
		default: // memory-pressure spike
			s = append(s, Action{
				At: at, Kind: ActMemPressure, A: rng.Intn(gc.Switches),
				Bytes: 1 << (18 + rng.Intn(6)), // 256 KB .. 8 MB
				Dur:   sim.Time((0.3 + rng.Float64()) * float64(sim.Second)),
			})
		}
	}
	return s
}
