// Package chaos is a deterministic fault-injection engine with
// runtime invariant checking, layered onto the simulation substrate.
//
// The engine drives faults the clean-path experiments never exercise
// — stochastic per-link packet loss and latency jitter, link flaps,
// rolling partitions, FE crash/revive schedules, and memory-pressure
// spikes — from either scripted schedules or a seeded random schedule
// generator. Because every fault decision draws from a sim.Rand and
// executes on the virtual clock, a campaign is bit-reproducible from
// its seed: a failing soak run prints the seed, and re-running with
// that seed replays the exact interleaving.
//
// Alongside the faults, an invariant registry turns the paper's
// robustness claims into continuously checked properties. Invariants
// are evaluated on sim-loop observer hooks (every Config.CheckEvery
// of virtual time), so a violation is caught within milliseconds of
// virtual time of its occurrence, not at the end of the run:
//
//   - packet conservation: every packet offered to the fabric or a
//     vSwitch is delivered, absorbed, in flight, or accounted in a
//     drop counter — nothing vanishes silently;
//   - single-copy session-state residency: a session's state lives on
//     exactly one BE (its vNIC's home) at all times — the paper's "no
//     state sync between FEs" design holds under any fault mix;
//   - failover bound: a crashed vSwitch is declared down by the
//     monitor and rebalanced away from by the controller within the
//     configured detection window (§4.4, Fig 14's ~2 s claim);
//   - no duplicate delivery: dual-running, failover, and rebalancing
//     never deliver the same packet to a VM twice;
//   - no blackhole: the gateway never routes a vNIC at an address
//     without committed rule tables of the current epoch — the
//     transactional control plane's two-phase commit guarantee.
package chaos

import (
	"fmt"

	"nezha/internal/controller"
	"nezha/internal/fabric"
	"nezha/internal/monitor"
	"nezha/internal/obs"
	"nezha/internal/packet"
	"nezha/internal/prof"
	"nezha/internal/sim"
	"nezha/internal/vswitch"
)

// System is the slice of the simulation the engine injects faults
// into and checks invariants over. Mon, Ctrl, and GW are optional;
// without them the failover-bound and no-blackhole invariants have
// nothing to check.
type System struct {
	Loop     *sim.Loop
	Fab      *fabric.Fabric
	GW       *fabric.Gateway
	Switches []*vswitch.VSwitch
	Mon      *monitor.Monitor
	Ctrl     *controller.Controller
}

// Config tunes the engine.
type Config struct {
	// CheckEvery is the virtual-time period between invariant
	// evaluations (default 20 ms).
	CheckEvery sim.Time
	// DetectWindow is the failover-bound allowance: a crash lasting
	// longer than this must be declared within it. Derive it from the
	// monitor config as ProbeInterval*(Misses+2) plus slack; 0
	// disables the failover-bound expectation for crashes.
	DetectWindow sim.Time
	// MaxViolations caps recorded violations (default 64).
	MaxViolations int
	// RecoveryBound is the allowance for a revived controller to finish
	// recovery — journal replay plus live-world reconciliation (default
	// 5 s). Judged by the ctrl-recovery-bound invariant.
	RecoveryBound sim.Time
}

// Invariant is a property checked on sim-loop hooks. Check returns
// nil while the property holds; a non-nil error records a violation
// and retires the invariant (the first breakage is the actionable
// one; repeats at every subsequent check would only be noise).
type Invariant interface {
	Name() string
	Check(now sim.Time) error
}

// Violation is one invariant breakage.
type Violation struct {
	Invariant string
	At        sim.Time
	Err       error
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v invariant %q violated: %v", v.At, v.Invariant, v.Err)
}

// linkFault is the loss/jitter model for one link (or the default).
type linkFault struct {
	loss   float64  // drop probability per packet
	jitter sim.Time // max extra latency, drawn uniformly
}

type crashEpisode struct {
	addr     packet.IPv4
	start    sim.Time
	reviveAt sim.Time
	// exempt marks episodes the failover bound must not judge: the
	// widespread-failure guard was active during the window, so
	// automatic declaration was deliberately suspended (§C.2).
	exempt bool
	// judged marks episodes already evaluated.
	judged bool
}

// Engine injects faults and evaluates invariants.
type Engine struct {
	sys System
	rng *sim.Rand
	cfg Config

	// faultSeed keys the per-packet fault hash. Fault decisions are
	// stateless — a hash of (seed, link, packet identity) rather than
	// draws from a shared stream — so they are independent of the
	// order in which sends execute within an event. (The monitor's
	// probe wave and the controller's config pushes iterate Go maps;
	// a sequential rng stream would make the whole run depend on map
	// iteration order.)
	faultSeed uint64

	global linkFault
	links  map[[2]packet.IPv4]linkFault

	// unaccounted makes chaos drops bypass the ChaosLost counter —
	// a deliberate conservation bug for negative tests.
	unaccounted bool

	crashes []*crashEpisode

	// ctrlOutages are controller crash/revive episodes; ctrlReviveHook
	// runs just before each Recover (see ctrlcrash.go).
	ctrlOutages    []*ctrlOutage
	ctrlReviveHook func(now sim.Time)

	invariants []Invariant
	violations []Violation
	nextCheck  sim.Time

	// ob/dumpPath, when set by AttachObs, auto-dump the flight
	// recorder on the first invariant violation.
	ob       *obs.Obs
	dumpPath string
	dumpSeed int64
	dumped   string // path actually written, "" until a violation dumps

	// prof/profDumpPath, when set by AttachProf, write a pprof-encoded
	// attribution profile alongside the flight-recorder dump.
	prof         *prof.Profiler
	profDumpPath string
	profDumped   string

	// hist, when set by AttachHistory, receives every invariant
	// violation so the live ops surface can serve them.
	hist *obs.History
}

// NewEngine wires an engine into the system: it installs the fabric
// fault injector and a sim-loop observer that paces invariant
// checks. rng must be a dedicated stream (seeded from the campaign
// seed), so fault draws do not perturb workload randomness.
func NewEngine(sys System, rng *sim.Rand, cfg Config) *Engine {
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 20 * sim.Millisecond
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	if cfg.RecoveryBound <= 0 {
		cfg.RecoveryBound = 5 * sim.Second
	}
	e := &Engine{
		sys:       sys,
		rng:       rng,
		cfg:       cfg,
		links:     make(map[[2]packet.IPv4]linkFault),
		faultSeed: rng.Uint64(),
	}
	sys.Fab.SetFaultInjector(e.verdict)
	sys.Loop.Observe(func(now sim.Time) {
		if now < e.nextCheck {
			return
		}
		e.nextCheck = now + e.cfg.CheckEvery
		e.CheckNow()
	})
	return e
}

// Register adds an invariant to the checked set.
func (e *Engine) Register(inv Invariant) { e.invariants = append(e.invariants, inv) }

// Violations returns every recorded breakage, in occurrence order.
func (e *Engine) Violations() []Violation { return e.violations }

// Failed reports whether any invariant broke.
func (e *Engine) Failed() bool { return len(e.violations) > 0 }

// CheckNow evaluates all live invariants immediately (also called at
// campaign end, after the loop drains).
func (e *Engine) CheckNow() {
	now := e.sys.Loop.Now()
	live := e.invariants[:0]
	for _, inv := range e.invariants {
		if err := inv.Check(now); err != nil {
			e.violate(inv.Name(), now, err)
			continue
		}
		live = append(live, inv)
	}
	e.invariants = live
}

func (e *Engine) violate(name string, at sim.Time, err error) {
	if len(e.violations) >= e.cfg.MaxViolations {
		return
	}
	e.violations = append(e.violations, Violation{Invariant: name, At: at, Err: err})
	e.hist.AddInvariant(obs.InvariantEvent{At: at, Invariant: name, Err: err.Error()})
	e.dumpOnViolation(name, at, err)
	e.profDumpOnViolation(at)
}

// AttachHistory mirrors every invariant violation into the ops-surface
// history store (nil-safe on both sides; recording is a bounded append
// under the History mutex, so it does not perturb the run).
func (e *Engine) AttachHistory(h *obs.History) { e.hist = h }

// --- Fault model -----------------------------------------------------

func linkKey(a, b packet.IPv4) [2]packet.IPv4 {
	if a > b {
		a, b = b, a
	}
	return [2]packet.IPv4{a, b}
}

// SetGlobalFault sets the default loss probability and maximum jitter
// applied to every link without a per-link override.
func (e *Engine) SetGlobalFault(loss float64, jitter sim.Time) {
	e.global = linkFault{loss: loss, jitter: jitter}
}

// SetLinkFault overrides the fault model for one server pair (both
// directions). Loss 0 and jitter 0 still overrides — use ClearLinkFault
// to fall back to the global model.
func (e *Engine) SetLinkFault(a, b packet.IPv4, loss float64, jitter sim.Time) {
	e.links[linkKey(a, b)] = linkFault{loss: loss, jitter: jitter}
}

// ClearLinkFault removes a per-link override.
func (e *Engine) ClearLinkFault(a, b packet.IPv4) { delete(e.links, linkKey(a, b)) }

// SetUnaccountedDrops makes every chaos drop bypass the fabric's
// ChaosLost counter. This deliberately breaks packet conservation; it
// exists so tests can prove the invariant checker catches exactly
// this class of accounting bug.
func (e *Engine) SetUnaccountedDrops(on bool) { e.unaccounted = on }

// verdict is the fabric.FaultInjector: a stateless deterministic
// draw per (link, packet traversal) against the link's fault model.
func (e *Engine) verdict(from, to packet.IPv4, p *packet.Packet) fabric.FaultVerdict {
	lf, ok := e.links[linkKey(from, to)]
	if !ok {
		lf = e.global
	}
	if lf.loss <= 0 && lf.jitter <= 0 {
		return fabric.FaultVerdict{}
	}
	var id, hops uint64
	if p != nil {
		id, hops = p.ID, uint64(p.Hops)
	}
	h := mix(e.faultSeed, uint64(from)<<32|uint64(to), id, hops)
	if lf.loss > 0 && hashFloat(h) < lf.loss {
		return fabric.FaultVerdict{Drop: true, SkipAccounting: e.unaccounted}
	}
	var jitter sim.Time
	if lf.jitter > 0 {
		jitter = sim.Time(hashFloat(mix(h, 0x9e3779b97f4a7c15)) * float64(lf.jitter))
	}
	return fabric.FaultVerdict{Jitter: jitter}
}

// mix folds the words into a splitmix64-finalized hash.
func mix(words ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, w := range words {
		h ^= w
		h += 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// hashFloat maps a hash to [0, 1) with 53-bit precision.
func hashFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// --- Mid-push kill ----------------------------------------------------

// ArmMidPushKill arms a one-shot fault aimed at the transactional
// control plane's window of maximum vulnerability: the gap between
// prepare (FE rule installs in flight) and commit (gateway flip). On
// the first prepare the controller starts, the engine picks one
// prepare target and — after a short delay placed inside the prepare
// window — either crashes it or partitions it from the controller's
// RPC endpoint, forcing the transaction through its abort/rollback or
// quorum path while the no-blackhole invariant watches the gateway.
func (e *Engine) ArmMidPushKill() {
	ctrl := e.sys.Ctrl
	if ctrl == nil {
		return
	}
	window := e.cfg.DetectWindow
	if window <= 0 {
		window = 2 * sim.Second
	}
	byAddr := make(map[packet.IPv4]int, len(e.sys.Switches))
	for i, vs := range e.sys.Switches {
		byAddr[vs.Addr()] = i
	}
	armed := true
	ctrl.SetPrepareHook(func(vnic uint32, targets []packet.IPv4) {
		if !armed || len(targets) == 0 {
			return
		}
		armed = false
		victim := targets[e.rng.Intn(len(targets))]
		delay := 50*sim.Millisecond + sim.Time(e.rng.Float64()*float64(600*sim.Millisecond))
		dur := window + 1500*sim.Millisecond
		if e.rng.Intn(2) == 0 {
			e.sys.Loop.Schedule(delay, func() {
				if i, ok := byAddr[victim]; ok {
					e.crash(i, dur)
				}
			})
			return
		}
		rpcAddr := ctrl.RPCAddr()
		e.sys.Loop.Schedule(delay, func() {
			e.sys.Fab.Partition(rpcAddr, victim)
		})
		e.sys.Loop.Schedule(delay+dur, func() {
			e.sys.Fab.Heal(rpcAddr, victim)
		})
	})
}

// --- Crash bookkeeping ----------------------------------------------

// crash executes a crash/revive episode on switch index i and records
// the expectation the failover-bound invariant judges.
func (e *Engine) crash(i int, dur sim.Time) {
	vs := e.sys.Switches[i]
	if vs.Crashed() {
		return // overlapping schedule; the first episode governs
	}
	vs.Crash()
	e.ob.Event(e.sys.Loop.Now(), "chaos-crash", vs.Addr(), 0, "dur=%v", dur)
	ep := &crashEpisode{
		addr:     vs.Addr(),
		start:    e.sys.Loop.Now(),
		reviveAt: e.sys.Loop.Now() + dur,
	}
	e.crashes = append(e.crashes, ep)
	e.sys.Loop.Schedule(dur, func() {
		e.ob.Event(e.sys.Loop.Now(), "chaos-revive", vs.Addr(), 0, "")
		vs.Revive()
	})
}
