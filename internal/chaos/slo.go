package chaos

import (
	"fmt"

	"nezha/internal/sim"
	"nezha/internal/slo"
)

// DefaultSLOBurnStreak is how many consecutive burning windows (at
// the tracker's burn window, default one virtual second each) the
// burn invariant tolerates before declaring a violation. Campaign
// fault schedules legitimately burn the error budget while a crash or
// partition is being detected and failed over; a streak this long
// means the system never recovered the vNIC's latency SLO.
const DefaultSLOBurnStreak = 6

type sloBurnBound struct {
	t      *slo.Tracker
	streak int
}

// SLOBurnBound checks that no vNIC sustains an error-budget burn at
// or above the tracker's threshold for maxStreak consecutive windows
// (0 = DefaultSLOBurnStreak). Transient burns during fault episodes
// are expected; the invariant judges only the current streak, so a
// recovery that restores healthy windows resets it.
func SLOBurnBound(t *slo.Tracker, maxStreak int) Invariant {
	if maxStreak <= 0 {
		maxStreak = DefaultSLOBurnStreak
	}
	return &sloBurnBound{t: t, streak: maxStreak}
}

func (c *sloBurnBound) Name() string { return "slo-burn-bound" }

func (c *sloBurnBound) Check(now sim.Time) error {
	for _, vnic := range c.t.VNICs() {
		if s := c.t.CurrentBurnStreak(vnic); s >= c.streak {
			_, _, _, p99, burn := c.t.VNICStats(vnic)
			return fmt.Errorf(
				"vnic %d burning its latency error budget for %d consecutive windows (burn=%.1f p99=%v objective=%v)",
				vnic, s, burn, sim.Time(p99), sim.Time(c.t.Objective()))
		}
	}
	return nil
}
