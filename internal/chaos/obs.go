package chaos

import (
	"fmt"
	"os"

	"nezha/internal/obs"
	"nezha/internal/sim"
)

// AttachObs connects an observability bundle to the engine: chaos
// crash/revive episodes are recorded as flight-recorder events, and
// the first invariant violation automatically writes a flight-recorder
// dump — recent control-plane events, transaction spans, and sampled
// per-packet hop traces — to dumpPath, stamped with the campaign seed
// so the dump and the reproduction handle travel together. An empty
// dumpPath records events but never writes a file.
func (e *Engine) AttachObs(o *obs.Obs, dumpPath string, seed int64) {
	e.ob = o
	e.dumpPath = dumpPath
	e.dumpSeed = seed
}

// DumpPath reports the dump file written on the first violation, or
// "" when no violation occurred (or no dump path was configured).
func (e *Engine) DumpPath() string { return e.dumped }

// dumpOnViolation writes the flight-recorder dump exactly once, at
// the moment the first invariant breaks, so the event ring still holds
// the lead-up to the failure.
func (e *Engine) dumpOnViolation(name string, at sim.Time, err error) {
	if e.ob == nil || e.dumpPath == "" || e.dumped != "" {
		return
	}
	f, ferr := os.Create(e.dumpPath)
	if ferr != nil {
		fmt.Fprintf(os.Stderr, "chaos: cannot write flight-recorder dump: %v\n", ferr)
		return
	}
	defer f.Close()
	e.dumped = e.dumpPath
	meta := fmt.Sprintf("seed=%d invariant=%q t=%v err=%v", e.dumpSeed, name, at, err)
	e.ob.WriteDump(f, meta)
}
