package chaos

import (
	"fmt"
	"os"

	"nezha/internal/prof"
	"nezha/internal/sim"
)

// AttachProf connects the cycle/byte attribution profiler: the first
// invariant violation writes a pprof-encoded profile next to the
// flight-recorder dump, so the dump answers "what happened" and the
// profile answers "where the cycles and bytes were going" at the
// moment things broke. An empty dumpPath records nothing.
func (e *Engine) AttachProf(p *prof.Profiler, dumpPath string) {
	e.prof = p
	e.profDumpPath = dumpPath
}

// ProfDumpPath reports the profile file actually written, or "" when
// none was (no violation and no final dump, or no path configured).
func (e *Engine) ProfDumpPath() string { return e.profDumped }

// profDumpOnViolation writes the attribution profile exactly once, at
// the first invariant violation.
func (e *Engine) profDumpOnViolation(at sim.Time) {
	if e.prof == nil || e.profDumpPath == "" || e.profDumped != "" {
		return
	}
	if err := e.writeProfile(at); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: cannot write attribution profile: %v\n", err)
	}
}

// DumpProfileFinal writes the attribution profile at campaign end when
// no violation already wrote one, so a clean -prof run still yields a
// profile to feed `go tool pprof`.
func (e *Engine) DumpProfileFinal(at sim.Time) {
	if e.prof == nil || e.profDumpPath == "" || e.profDumped != "" {
		return
	}
	if err := e.writeProfile(at); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: cannot write attribution profile: %v\n", err)
	}
}

func (e *Engine) writeProfile(at sim.Time) error {
	f, err := os.Create(e.profDumpPath)
	if err != nil {
		return err
	}
	defer f.Close()
	// The campaign clock starts at zero, so elapsed run time == at.
	if err := e.prof.WriteProfile(f, at, at); err != nil {
		return err
	}
	e.profDumped = e.profDumpPath
	return nil
}
