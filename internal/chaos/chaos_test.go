package chaos

import (
	"strings"
	"testing"

	"nezha/internal/cluster"
	"nezha/internal/fabric"
	"nezha/internal/monitor"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
	"nezha/internal/workload"
)

// testRig is a small scripted-chaos rig: 4 servers, BE on 0 with one
// client on 1, engine with a fast check cadence.
type testRig struct {
	c   *cluster.Cluster
	eng *Engine
	gen *workload.CRR
}

const rigWindow = 1500 * sim.Millisecond

func buildRig(t *testing.T, seed int64) *testRig {
	t.Helper()
	monCfg := monitor.DefaultConfig(cluster.MonitorAddr)
	monCfg.ProbeInterval = 200 * sim.Millisecond
	c := cluster.New(cluster.Options{
		Servers: 4,
		Seed:    seed,
		VSwitch: func(i int, vc *vswitch.Config) {
			vc.Cores = 2
			vc.CoreHz = 500_000_000
		},
		Monitor: monCfg,
	})
	serverIP := packet.MakeIP(10, 0, 100, 1)
	clientIP := packet.MakeIP(10, 0, 1, 1)
	_, err := c.AddVM(cluster.VMSpec{
		Server: 0, VNIC: 100, VPC: 7, IP: serverIP, VCPUs: 32,
		MakeRules: func() *tables.RuleSet {
			rs := tables.NewRuleSet(100, 7)
			rs.Route.Add(tables.MakePrefix(clientIP, 32), packet.IPv4(1))
			return rs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := c.AddVM(cluster.VMSpec{
		Server: 1, VNIC: 1, VPC: 7, IP: clientIP, VCPUs: 8,
		MakeRules: cluster.TwoSubnetRules(1, 7, tables.MakePrefix(serverIP, 24), 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(System{
		Loop: c.Loop, Fab: c.Fab, Switches: c.Switches, Mon: c.Mon, Ctrl: c.Ctrl,
	}, sim.NewRand(seed+1000), Config{CheckEvery: 10 * sim.Millisecond, DetectWindow: rigWindow})
	RegisterStandard(eng)
	return &testRig{c: c, eng: eng, gen: workload.NewCRR(c.Loop, c.Loop.Rand(), vm, serverIP, 400)}
}

func violationNames(vs []Violation) string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Invariant
	}
	return strings.Join(names, ",")
}

// TestUnaccountedDropsCaught is the negative control the engine
// exists for: a deliberately injected accounting bug (chaos drops
// that bypass the ChaosLost counter) must be caught by the
// packet-conservation invariant. The sibling run with accounting left
// on proves the violation comes from the bug, not from lossy links.
func TestUnaccountedDropsCaught(t *testing.T) {
	for _, unaccounted := range []bool{false, true} {
		r := buildRig(t, 42)
		r.eng.SetUnaccountedDrops(unaccounted)
		r.eng.Apply(Schedule{{At: 100 * sim.Millisecond, Kind: ActLinkFault, Loss: 0.3, Dur: 2 * sim.Second}})
		r.c.Start()
		r.gen.Start()
		r.c.Loop.Run(3 * sim.Second)
		r.gen.Stop()
		r.eng.SetGlobalFault(0, 0)
		r.c.Loop.Run(r.c.Loop.Now() + sim.Second)
		r.eng.CheckNow()

		if !unaccounted {
			if r.eng.Failed() {
				t.Fatalf("accounted run must be clean, got violations: %s", violationNames(r.eng.Violations()))
			}
			continue
		}
		if !r.eng.Failed() {
			t.Fatal("unaccounted chaos drops were not caught")
		}
		v := r.eng.Violations()[0]
		if v.Invariant != "packet-conservation" {
			t.Fatalf("expected packet-conservation to fire first, got %v", v)
		}
		if !strings.Contains(v.Err.Error(), "unaccounted") {
			t.Fatalf("violation should quantify the missing packets, got: %v", v.Err)
		}
	}
}

// TestFailoverBoundCatchesMissedDetection is the negative control for
// invariant #3: with the health monitor never started, a crashed
// switch is never declared, and the failover-bound invariant must
// flag it once the detection window expires.
func TestFailoverBoundCatchesMissedDetection(t *testing.T) {
	r := buildRig(t, 7)
	// Start the control plane and workload but NOT the monitor.
	r.c.Ctrl.Start()
	r.gen.Start()
	r.eng.Apply(Schedule{{At: 200 * sim.Millisecond, Kind: ActCrash, A: 3, Dur: 4 * sim.Second}})
	r.c.Loop.Run(3 * sim.Second)
	r.gen.Stop()
	r.c.Loop.Run(r.c.Loop.Now() + sim.Second)

	found := false
	for _, v := range r.eng.Violations() {
		if v.Invariant == "failover-bound" {
			found = true
		} else {
			t.Errorf("unexpected violation: %v", v)
		}
	}
	if !found {
		t.Fatalf("missed detection not flagged; violations: %s", violationNames(r.eng.Violations()))
	}
}

// TestShortBlipNotFlagged: a crash that revives inside the detection
// window must not trip the failover bound even if it goes undeclared.
func TestShortBlipNotFlagged(t *testing.T) {
	r := buildRig(t, 8)
	r.c.Start()
	r.gen.Start()
	r.eng.Apply(Schedule{{At: 200 * sim.Millisecond, Kind: ActCrash, A: 3, Dur: 300 * sim.Millisecond}})
	r.c.Loop.Run(3 * sim.Second)
	r.gen.Stop()
	r.c.Loop.Run(r.c.Loop.Now() + sim.Second)
	r.eng.CheckNow()
	if r.eng.Failed() {
		t.Fatalf("short blip flagged: %s", violationNames(r.eng.Violations()))
	}
}

// TestLinkFaultOverride exercises the per-link fault model: a 100%
// global loss with a clean per-link override must drop everything
// except the overridden pair, deterministically.
func TestLinkFaultOverride(t *testing.T) {
	loop := sim.NewLoop(1)
	fab := fabric.New(loop)
	e := NewEngine(System{Loop: loop, Fab: fab}, sim.NewRand(1), Config{})

	a, b := packet.MakeIP(10, 0, 0, 1), packet.MakeIP(10, 0, 0, 2)
	e.SetGlobalFault(1.0, 0)
	if v := e.verdict(a, b, nil); !v.Drop {
		t.Fatal("global loss=1.0 must drop")
	}
	e.SetLinkFault(a, b, 0, 0)
	if v := e.verdict(a, b, nil); v.Drop || v.Jitter != 0 {
		t.Fatalf("per-link clean override must pass, got %+v", v)
	}
	if v := e.verdict(b, a, nil); v.Drop {
		t.Fatal("override must apply in both directions")
	}
	e.ClearLinkFault(b, a)
	if v := e.verdict(a, b, nil); !v.Drop {
		t.Fatal("cleared override must fall back to the global model")
	}
	e.SetGlobalFault(0, 500)
	for i := 0; i < 100; i++ {
		v := e.verdict(a, b, nil)
		if v.Drop {
			t.Fatal("loss=0 must never drop")
		}
		if v.Jitter < 0 || v.Jitter >= 500 {
			t.Fatalf("jitter %v outside [0, 500)", v.Jitter)
		}
	}
}

// TestGenerateRespectsCrashBound replays generated schedules and
// checks the generator's promises: crash episodes never overlap on
// one switch, at most 2 switches are down at once, and durations are
// either short blips or decisively longer than the detection window.
func TestGenerateRespectsCrashBound(t *testing.T) {
	const window = 2 * sim.Second
	for seed := int64(0); seed < 20; seed++ {
		sched := Generate(sim.NewRand(seed), GenConfig{
			Start: sim.Second, Horizon: 10 * sim.Second,
			Events: 40, Switches: 8, DetectWindow: window,
		})
		if len(sched) != 40 {
			t.Fatalf("seed %d: got %d events, want 40", seed, len(sched))
		}
		type span struct{ start, end sim.Time }
		bySwitch := make(map[int][]span)
		var crashes []span
		for _, a := range sched {
			if a.Kind != ActCrash {
				continue
			}
			if a.Dur >= sim.Time(0.6*float64(window)) && a.Dur <= window {
				t.Errorf("seed %d: ambiguous crash duration %v (window %v)", seed, a.Dur, window)
			}
			s := span{a.At, a.At + a.Dur}
			for _, prev := range bySwitch[a.A] {
				if s.start < prev.end && prev.start < s.end {
					t.Errorf("seed %d: overlapping crashes on switch %d", seed, a.A)
				}
			}
			bySwitch[a.A] = append(bySwitch[a.A], s)
			crashes = append(crashes, s)
		}
		for _, s := range crashes {
			down := 0
			for _, o := range crashes {
				if s.start >= o.start && s.start < o.end {
					down++
				}
			}
			if down > 2 {
				t.Errorf("seed %d: %d switches down at %v, want <= 2", seed, down, s.start)
			}
		}
	}
}

// TestScheduleApplyIgnoresOutOfRange: schedules generated for a larger
// rig must degrade, not panic.
func TestScheduleApplyIgnoresOutOfRange(t *testing.T) {
	loop := sim.NewLoop(1)
	fab := fabric.New(loop)
	e := NewEngine(System{Loop: loop, Fab: fab}, sim.NewRand(1), Config{})
	e.Apply(Schedule{{At: sim.Second, Kind: ActCrash, A: 5, Dur: sim.Second}})
	loop.Run(2 * sim.Second)
}
