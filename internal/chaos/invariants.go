package chaos

import (
	"fmt"

	"nezha/internal/flowcache"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/vswitch"
)

// RegisterStandard installs the built-in invariants: packet
// conservation, single-copy session-state residency, the failover
// detection bound, no-duplicate-delivery, and — when the system
// carries a gateway — no-blackhole.
func RegisterStandard(e *Engine) {
	e.Register(PacketConservation(e.sys))
	e.Register(StateResidency(e.sys))
	e.Register(FailoverBound(e))
	e.Register(NoDuplicateDelivery(e.sys))
	if e.sys.GW != nil {
		e.Register(NoBlackhole(e.sys))
	}
	if e.sys.Ctrl != nil {
		e.Register(NoDuplicateReplay(e.sys))
		e.Register(CtrlRecoveryBound(e))
		if e.sys.GW != nil {
			e.Register(CtrlEpochMonotonic(e.sys))
		}
	}
}

// --- Packet conservation ---------------------------------------------

type packetConservation struct{ sys System }

// PacketConservation checks that nothing vanishes silently: the
// fabric's send ledger balances against deliveries, losses, and
// in-flight packets, and every vSwitch's ingress balances against
// forwards, VM deliveries, absorbed control packets, accounted drops,
// and packets queued in its CPU model. Both equations hold at every
// event boundary, so the check may run at any time.
func PacketConservation(sys System) Invariant { return &packetConservation{sys} }

func (c *packetConservation) Name() string { return "packet-conservation" }

func (c *packetConservation) Check(now sim.Time) error {
	f := c.sys.Fab
	if got := f.Delivered + f.Lost + f.ChaosLost + f.InFlight(); got != f.Sends {
		return fmt.Errorf(
			"fabric ledger: sends=%d != delivered=%d + lost=%d + chaos-lost=%d + in-flight=%d (=%d); %d packet(s) unaccounted",
			f.Sends, f.Delivered, f.Lost, f.ChaosLost, f.InFlight(), got, int64(f.Sends)-int64(got))
	}
	for _, vs := range c.sys.Switches {
		s := vs.Stats
		in := s.FromVM + s.FromNet
		out := s.Sent + s.Delivered + s.TotalDrops() + s.Absorbed + uint64(vs.InFlightCPU())
		if in != out {
			return fmt.Errorf(
				"vswitch %v ledger: in=%d (vm=%d net=%d) != out=%d (sent=%d delivered=%d drops=%d absorbed=%d cpu=%d)",
				vs.Addr(), in, s.FromVM, s.FromNet, out,
				s.Sent, s.Delivered, s.TotalDrops(), s.Absorbed, vs.InFlightCPU())
		}
	}
	return nil
}

// --- Single-copy session-state residency -----------------------------

type stateResidency struct{ sys System }

// StateResidency checks the zero-state-sync design invariant: every
// session's state lives on exactly one vSwitch, and that vSwitch is
// the session's vNIC home (its BE). FEs may cache stateless
// pre-actions anywhere, but a second state copy — or a state copy on
// a frontend — would mean Nezha silently became a state-replicating
// system.
func StateResidency(sys System) Invariant { return &stateResidency{sys} }

func (c *stateResidency) Name() string { return "single-copy-state-residency" }

func (c *stateResidency) Check(now sim.Time) error {
	holders := make(map[packet.SessionKey]packet.IPv4)
	for _, vs := range c.sys.Switches {
		var err error
		vs.Sessions().Range(func(e *flowcache.Entry) bool {
			if !e.HasState {
				return true
			}
			if !vs.HasVNIC(e.VNIC) {
				err = fmt.Errorf("session state for vNIC %d held at %v, where the vNIC is not resident (FE holding state)",
					e.VNIC, vs.Addr())
				return false
			}
			if first, dup := holders[e.Key]; dup {
				err = fmt.Errorf("session state for vNIC %d duplicated: copies at %v and %v", e.VNIC, first, vs.Addr())
				return false
			}
			holders[e.Key] = vs.Addr()
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Failover bound --------------------------------------------------

type failoverBound struct{ eng *Engine }

// FailoverBound checks the §4.4 claim: a vSwitch that stays crashed
// for the full detection window is declared down by the monitor, and
// the controller rebalances away from it, no later than crash time +
// Config.DetectWindow. Episodes overlapping a widespread-failure
// guard trip are exempt — the guard deliberately suspends automatic
// removal (§C.2). A declaration that predates the crash (the monitor
// had already isolated the target) satisfies the bound.
func FailoverBound(e *Engine) Invariant { return &failoverBound{eng: e} }

func (c *failoverBound) Name() string { return "failover-bound" }

func (c *failoverBound) Check(now sim.Time) error {
	mon, ctrl := c.eng.sys.Mon, c.eng.sys.Ctrl
	window := c.eng.cfg.DetectWindow
	if mon == nil || window <= 0 {
		return nil
	}
	guard := mon.GuardActive()
	for _, ep := range c.eng.crashes {
		if ep.judged {
			continue
		}
		if guard && now <= ep.reviveAt {
			ep.exempt = true
		}
		deadline := ep.start + window
		if c.eng.sys.Ctrl != nil {
			// A controller outage overlapping the window buffers the
			// monitor's declaration; the rebalance clock restarts when
			// recovery drains it.
			adj, wait := c.eng.ctrlDeadline(ep.start, deadline, window)
			if wait {
				continue
			}
			deadline = adj
		}
		if now < deadline {
			continue
		}
		ep.judged = true
		switch {
		case ep.exempt:
			continue // guard suspended declarations during the window
		case ep.reviveAt < deadline:
			continue // short blip: detection optional
		case now > ep.reviveAt:
			continue // revived between checks: declaration may have cleared
		}
		at, ok := mon.DeclaredAt(ep.addr)
		if !ok || at > deadline {
			return fmt.Errorf("vswitch %v crashed at %v not declared down within %v (deadline %v)",
				ep.addr, ep.start, window, deadline)
		}
		if ctrl != nil {
			ft, ok := ctrl.FailoverTime(ep.addr)
			if !ok || ft > deadline {
				return fmt.Errorf("vswitch %v declared down at %v but controller had not rebalanced by deadline %v",
					ep.addr, at, deadline)
			}
		}
	}
	return nil
}

// --- No duplicate delivery -------------------------------------------

type dupDelivery struct {
	seen map[uint64]struct{}
	err  error
}

// NoDuplicateDelivery checks that a packet reaches a VM at most once,
// across dual-running, rebalancing, and failover. It taps every
// vSwitch's delivery path; packet IDs are simulation-unique for VM
// traffic. (Traffic mirroring to a VM-bearing sink would clone IDs —
// campaigns do not enable it.)
func NoDuplicateDelivery(sys System) Invariant {
	d := &dupDelivery{seen: make(map[uint64]struct{})}
	for _, vs := range sys.Switches {
		vs := vs
		vs.SetDeliveryObserver(func(vnic uint32, p *packet.Packet, _ sim.Time) {
			if _, dup := d.seen[p.ID]; dup {
				if d.err == nil {
					d.err = fmt.Errorf("packet id=%d (vNIC %d) delivered twice, second copy at %v", p.ID, vnic, vs.Addr())
				}
				return
			}
			d.seen[p.ID] = struct{}{}
		})
	}
	return d
}

func (d *dupDelivery) Name() string { return "no-duplicate-delivery" }

func (d *dupDelivery) Check(now sim.Time) error { return d.err }

// --- No blackhole -----------------------------------------------------

type noBlackhole struct {
	sys       System
	byAddr    map[packet.IPv4]*vswitch.VSwitch
	lastEpoch map[uint32]uint64
}

// NoBlackhole checks the transactional control plane's commit
// guarantee: the gateway never routes a vNIC at an address that has no
// committed rule tables for it (neither an installed FE instance nor a
// resident vNIC still holding its tables), never at an empty address
// list, and a vNIC entry's config epoch never regresses. A crashed
// vSwitch still counts as servable — it retains its configured tables,
// and routing at a crash victim is the failover bound's business, not
// a commit-ordering bug. The two-phase commit (prepare: install FE
// rules and gather acks; commit: flip the gateway) makes this hold by
// construction; the bypass knob in the controller exists to prove this
// invariant fires when it is violated.
func NoBlackhole(sys System) Invariant {
	byAddr := make(map[packet.IPv4]*vswitch.VSwitch, len(sys.Switches))
	for _, vs := range sys.Switches {
		byAddr[vs.Addr()] = vs
	}
	return &noBlackhole{sys: sys, byAddr: byAddr, lastEpoch: make(map[uint32]uint64)}
}

func (c *noBlackhole) Name() string { return "no-blackhole" }

func (c *noBlackhole) Check(now sim.Time) error {
	var err error
	c.sys.GW.Range(func(vnic uint32, addrs []packet.IPv4, epoch uint64) bool {
		if last := c.lastEpoch[vnic]; epoch < last {
			err = fmt.Errorf("gateway entry for vNIC %d regressed from epoch %d to %d", vnic, last, epoch)
			return false
		}
		c.lastEpoch[vnic] = epoch
		if len(addrs) == 0 {
			err = fmt.Errorf("gateway routes vNIC %d at an empty address list (epoch %d)", vnic, epoch)
			return false
		}
		for _, a := range addrs {
			vs, known := c.byAddr[a]
			if !known {
				err = fmt.Errorf("gateway routes vNIC %d at unknown address %v (epoch %d)", vnic, a, epoch)
				return false
			}
			if !vs.CanServe(vnic) {
				err = fmt.Errorf("gateway routes vNIC %d at %v, which has no committed rules for it (epoch %d)",
					vnic, a, epoch)
				return false
			}
		}
		return true
	})
	return err
}
