package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"nezha/internal/cluster"
	"nezha/internal/controller"
	"nezha/internal/journal"
	"nezha/internal/monitor"
	"nezha/internal/obs"
	"nezha/internal/packet"
	"nezha/internal/prof"
	"nezha/internal/sim"
	"nezha/internal/slo"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
	"nezha/internal/workload"
)

// CampaignConfig parameterizes one seeded chaos campaign: a BE+FE
// cluster under client load, a randomly generated fault schedule, and
// the standard invariant set. Everything derives from Seed.
type CampaignConfig struct {
	Seed int64
	// Duration is total virtual run time (default 8 s).
	Duration sim.Time
	// Servers is the region size (default 8; the BE is server 0,
	// clients live on 1..Clients).
	Servers int
	// Clients is the number of client VMs (default 3).
	Clients int
	// RatePerClient is each client's CRR open rate (default 250/s).
	RatePerClient float64
	// Events is the number of fault episodes to generate (default 12).
	Events int
	// CheckEvery paces invariant evaluation (default 20 ms).
	CheckEvery sim.Time
	// UnaccountedDrops turns on the deliberate conservation bug, for
	// negative tests that prove the checker catches it.
	UnaccountedDrops bool
	// MidPushKill arms a one-shot crash-or-partition of a prepare
	// target in the window between prepare and commit (see
	// Engine.ArmMidPushKill), on top of the generated schedule.
	MidPushKill bool
	// BypassTwoPhase makes the controller skip the prepare/commit
	// protocol and flip the gateway fire-and-forget — the negative
	// control proving the no-blackhole invariant fires when the
	// two-phase commit is bypassed.
	BypassTwoPhase bool
	// CtrlCrash arms one controller crash/revive episode on top of the
	// generated schedule: the controller journals to an in-memory WAL,
	// crashes at CtrlCrashAt (default mid-run), and recovers after
	// CtrlOutage (default 1.5 s).
	CtrlCrash bool
	// CtrlCrashAt is the crash time (0 = Duration/2).
	CtrlCrashAt sim.Time
	// CtrlOutage is how long the controller stays dead (0 = 1.5 s).
	CtrlOutage sim.Time
	// CtrlCrashOnPrepare replaces the fixed-time crash with one armed on
	// the controller's first prepare, landing at a short random offset so
	// seeds sample both sides of the commit point. Mutually exclusive
	// with MidPushKill (both want the single prepare-hook slot).
	CtrlCrashOnPrepare bool
	// CtrlCrashAtCommitGap replaces the fixed-time crash with a
	// deterministic one landing in the gap between the gateway
	// installing the campaign vNIC's offload flip and the controller
	// journaling the resolve — the window where recovery MUST adopt a
	// commit the dead incarnation never heard the ack for.
	CtrlCrashAtCommitGap bool
	// SkipReconcile makes recovery skip the live-world reconciliation
	// and blindly roll back open intents — the negative control proving
	// the crash-recovery invariants fire when reconciliation is broken.
	SkipReconcile bool
	// RecoveryBound overrides the recovery-time allowance (0 = 5 s).
	RecoveryBound sim.Time
	// Obs enables the observability layer: labeled telemetry, sampled
	// packet flight tracing, transaction spans, and the flight recorder
	// whose contents are dumped on the first invariant violation.
	Obs bool
	// ObsSampleRate is the flight-trace sampling probability (default
	// 1.0 when Obs is on — campaign rigs are small enough to trace
	// every packet).
	ObsSampleRate float64
	// ObsDumpDir, when non-empty, is where a violation's flight-recorder
	// dump is written (nezha-dump-seed<N>.txt).
	ObsDumpDir string
	// Prof enables the cycle/byte attribution profiler on every
	// vSwitch and the controller.
	Prof bool
	// ProfDir, when non-empty (and Prof is on), is where the
	// pprof-encoded attribution profile is written
	// (nezha-prof-seed<N>.pb.gz) — at the first invariant violation,
	// or at campaign end on a clean run.
	ProfDir string
	// Scheduler picks the simulation loop's event-queue implementation
	// (default: calendar queue). Differential tests run the same seed
	// under sim.SchedHeap and require identical digests.
	Scheduler sim.SchedulerKind
	// Hist, when non-nil, is the ops-surface history store: a publisher
	// feeds it one registry snapshot per virtual second (plus spans and
	// attribution profiles) and the engine mirrors invariant violations
	// into it, so an opsapi server can serve the run live. Requires Obs.
	// Publishing happens through loop observers only, so an attached
	// history leaves digests, decision logs, and verdicts bit-identical.
	Hist *obs.History
	// Pace throttles the run to Pace× wall-clock speed (0 = unpaced).
	// Used with Hist + -listen so a live scraper sees snapshots arrive
	// in real time instead of the campaign finishing in milliseconds.
	Pace float64
	// SLO enables the latency/hot-flow SLO tracker on every vSwitch,
	// the slo-burn-bound invariant, and slo_burn flight-recorder
	// events (when Obs is also on). The layer is observer-effect-free:
	// digests with SLO on must equal the same seed with it off.
	SLO bool
	// SLOObjective overrides the per-vNIC latency objective (0 =
	// slo.DefaultObjective, 100 ms).
	SLOObjective sim.Time
	// SLOBurnStreak overrides how many consecutive burning windows the
	// invariant tolerates (0 = DefaultSLOBurnStreak).
	SLOBurnStreak int
}

// Report is a campaign's outcome.
type Report struct {
	Seed       int64
	Duration   sim.Time
	Schedule   Schedule
	Violations []Violation
	// Digest is an FNV-1a fingerprint of the end state: event count,
	// final clock, and every counter that traffic touches. Two runs of
	// the same seed must produce identical digests.
	Digest uint64
	// Completed is the number of client request/response exchanges
	// that finished — a campaign that moved no traffic proves nothing.
	Completed uint64
	// Declared / Failovers summarize how much failure handling the
	// schedule actually exercised.
	Declared  uint64
	Failovers uint64
	// TraceDigest fingerprints the sampled flight-trace hop stream
	// (zero when Obs is off). Same seed + same sample rate must yield
	// the same digest.
	TraceDigest uint64
	// DumpPath is the flight-recorder dump written on the first
	// invariant violation ("" when none was written).
	DumpPath string
	// ProfDumpPath is the pprof-encoded attribution profile written at
	// the first violation or at campaign end ("" when none).
	ProfDumpPath string
	// Recoveries / RecoveryMs summarize controller crash handling: how
	// many recoveries completed and how long the last one took from
	// revive to settled (zero when no controller crash was armed).
	Recoveries uint64
	RecoveryMs float64
	// JournalPath is the journal dump written next to the flight
	// recorder on a failing crash campaign ("" when none).
	JournalPath string
	// SLO worst-offender summary (zero when the SLO layer was off or
	// recorded nothing): the vNIC with the highest cumulative p99, its
	// p99, the configured objective, and total burning windows.
	SLOWorstVNIC  uint32
	SLOWorstP99   sim.Time
	SLOObjective  sim.Time
	SLOBurnEvents uint64
}

// Failed reports whether any invariant broke.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// ReportView is the JSON-serializable form of a Report served by the
// ops surface at /api/v1/chaos/report (violations flattened to
// strings so they survive encoding).
type ReportView struct {
	Seed        int64    `json:"seed"`
	Duration    sim.Time `json:"duration"`
	Failed      bool     `json:"failed"`
	Violations  []string `json:"violations,omitempty"`
	Digest      uint64   `json:"digest"`
	TraceDigest uint64   `json:"trace_digest,omitempty"`
	Completed   uint64   `json:"completed"`
	Declared    uint64   `json:"declared"`
	Failovers   uint64   `json:"failovers"`
	Recoveries  uint64   `json:"recoveries,omitempty"`
	RecoveryMs  float64  `json:"recovery_ms,omitempty"`
	// SLO worst-offender summary (omitted when the SLO layer was off).
	SLOWorstVNIC  uint32   `json:"slo_worst_vnic,omitempty"`
	SLOWorstP99   sim.Time `json:"slo_worst_p99,omitempty"`
	SLOObjective  sim.Time `json:"slo_objective,omitempty"`
	SLOBurnEvents uint64   `json:"slo_burn_events,omitempty"`
}

// View flattens the report for JSON serving.
func (r Report) View() ReportView {
	v := ReportView{
		Seed:        r.Seed,
		Duration:    r.Duration,
		Failed:      r.Failed(),
		Digest:      r.Digest,
		TraceDigest: r.TraceDigest,
		Completed:   r.Completed,
		Declared:    r.Declared,
		Failovers:   r.Failovers,
		Recoveries:  r.Recoveries,
		RecoveryMs:  r.RecoveryMs,

		SLOWorstVNIC:  r.SLOWorstVNIC,
		SLOWorstP99:   r.SLOWorstP99,
		SLOObjective:  r.SLOObjective,
		SLOBurnEvents: r.SLOBurnEvents,
	}
	for _, viol := range r.Violations {
		v.Violations = append(v.Violations, viol.String())
	}
	return v
}

const (
	campaignVNIC = 100
	campaignVPC  = 7
)

func campaignServerIP() packet.IPv4 { return packet.MakeIP(10, 0, 100, 1) }
func campaignClientIP(i int) packet.IPv4 {
	return packet.MakeIP(10, 0, byte(1+i), 1)
}

// RunCampaign builds the rig, runs the schedule, and judges the
// invariants. The rig: one high-demand server VM homed on server 0
// (the BE), offloaded to an FE pool, with open-loop CRR clients on
// servers 1..Clients hammering it while faults land.
func RunCampaign(cfg CampaignConfig) (Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 8 * sim.Second
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 8
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 3
	}
	if cfg.Clients > cfg.Servers-1 {
		return Report{}, fmt.Errorf("chaos: %d clients need %d servers, have %d", cfg.Clients, cfg.Clients+1, cfg.Servers)
	}
	if cfg.RatePerClient <= 0 {
		cfg.RatePerClient = 250
	}
	if cfg.Events <= 0 {
		cfg.Events = 12
	}

	monCfg := monitor.DefaultConfig(cluster.MonitorAddr)
	monCfg.ProbeInterval = 200 * sim.Millisecond
	// Worst case: crash lands just after an answered probe wave, so
	// declaration needs Misses+2 rounds; slack covers the controller.
	detectWindow := monCfg.ProbeInterval*sim.Time(monCfg.Misses+2) + 500*sim.Millisecond

	// Majority quorum (instead of the default all-targets) keeps a
	// single killed prepare target from aborting every offload the
	// schedule provokes — the commit path itself must stay safe.
	ctrlCfg := controller.DefaultConfig()
	ctrlCfg.PrepareQuorumFrac = 0.5
	ctrlCfg.UnsafeDirectCommit = cfg.BypassTwoPhase

	var ob *obs.Obs
	if cfg.Obs {
		rate := cfg.ObsSampleRate
		if rate <= 0 {
			rate = 1.0
		}
		ob = obs.New(obs.Options{Seed: cfg.Seed, SampleRate: rate})
	}
	var pr *prof.Profiler
	if cfg.Prof {
		pr = prof.New()
	}
	var tracker *slo.Tracker
	if cfg.SLO {
		tracker = slo.NewTracker(slo.Config{
			Objective: int64(cfg.SLOObjective),
			OnBurn: func(now int64, ev slo.BurnEvent) {
				// Flight-recorder only: the ring is outside every digest,
				// so the event is free of observer effects. Safe when ob
				// is nil (Event is nil-receiver-safe).
				ob.Event(sim.Time(now), "slo_burn", 0, ev.VNIC,
					"burn=%.1f consecutive=%d window=%d violations=%d",
					ev.Burn, ev.Consecutive, ev.Window, ev.Violations)
			},
		})
	}

	c := cluster.New(cluster.Options{
		Servers:   cfg.Servers,
		Seed:      cfg.Seed,
		Scheduler: cfg.Scheduler,
		VSwitch: func(i int, vc *vswitch.Config) {
			vc.Cores = 2
			vc.CoreHz = 500_000_000
		},
		Controller: ctrlCfg,
		Monitor:    monCfg,
		Obs:        ob,
		Prof:       pr,
		SLO:        tracker,
	})

	// Server (BE) VM on server 0.
	serverNet := tables.MakePrefix(campaignServerIP(), 24)
	_, err := c.AddVM(cluster.VMSpec{
		Server: 0, VNIC: campaignVNIC, VPC: campaignVPC, IP: campaignServerIP(), VCPUs: 64,
		MakeRules: func() *tables.RuleSet {
			rs := tables.NewRuleSet(campaignVNIC, campaignVPC)
			for i := 0; i < cfg.Clients; i++ {
				rs.Route.Add(tables.MakePrefix(campaignClientIP(i), 32), packet.IPv4(uint32(i+1)))
			}
			return rs
		},
	})
	if err != nil {
		return Report{}, err
	}
	var clients []*workload.VM
	var gens []*workload.CRR
	for i := 0; i < cfg.Clients; i++ {
		vnic := uint32(i + 1)
		vm, err := c.AddVM(cluster.VMSpec{
			Server: i + 1, VNIC: vnic, VPC: campaignVPC, IP: campaignClientIP(i), VCPUs: 8,
			MakeRules: cluster.TwoSubnetRules(vnic, campaignVPC, serverNet, campaignVNIC),
		})
		if err != nil {
			return Report{}, err
		}
		clients = append(clients, vm)
		gens = append(gens, workload.NewCRR(c.Loop, c.Loop.Rand(), vm, campaignServerIP(), cfg.RatePerClient))
	}

	// Chaos randomness is a dedicated stream (offset so it never
	// collides with the workload stream seeded directly from Seed).
	rng := sim.NewRand(cfg.Seed ^ 0x6368616f73) // "chaos"
	eng := NewEngine(System{
		Loop: c.Loop, Fab: c.Fab, GW: c.GW, Switches: c.Switches, Mon: c.Mon, Ctrl: c.Ctrl,
	}, rng, Config{
		CheckEvery:    cfg.CheckEvery,
		DetectWindow:  detectWindow,
		RecoveryBound: cfg.RecoveryBound,
	})
	RegisterStandard(eng)
	if tracker != nil {
		eng.Register(SLOBurnBound(tracker, cfg.SLOBurnStreak))
	}
	eng.SetUnaccountedDrops(cfg.UnaccountedDrops)
	if ob != nil {
		dumpPath := ""
		if cfg.ObsDumpDir != "" {
			dumpPath = filepath.Join(cfg.ObsDumpDir, fmt.Sprintf("nezha-dump-seed%d.txt", cfg.Seed))
		}
		eng.AttachObs(ob, dumpPath, cfg.Seed)
	}
	if pr != nil && cfg.ProfDir != "" {
		eng.AttachProf(pr, filepath.Join(cfg.ProfDir, fmt.Sprintf("nezha-prof-seed%d.pb.gz", cfg.Seed)))
	}
	if cfg.Hist != nil {
		if ob == nil {
			return Report{}, fmt.Errorf("chaos: CampaignConfig.Hist requires Obs")
		}
		eng.AttachHistory(cfg.Hist)
		if pub := c.NewOpsPublisher(cfg.Hist, 10); pub != nil {
			pub.Attach(c.Loop)
		}
	}
	if cfg.Pace > 0 {
		sim.AttachPacer(c.Loop, cfg.Pace)
	}

	// Faults land after offload has settled and stop early enough
	// that most crash windows resolve inside the run.
	chaosStart := sim.Second
	horizon := cfg.Duration - chaosStart - sim.Second
	if horizon < sim.Second {
		horizon = cfg.Duration / 2
		chaosStart = cfg.Duration / 4
	}
	sched := Generate(rng, GenConfig{
		Start:        chaosStart,
		Horizon:      horizon,
		Events:       cfg.Events,
		Switches:     cfg.Servers,
		DetectWindow: detectWindow,
	})
	eng.Apply(sched)
	if cfg.MidPushKill {
		eng.ArmMidPushKill()
	}
	var jrn *journal.Journal
	if cfg.CtrlCrash || cfg.CtrlCrashOnPrepare || cfg.CtrlCrashAtCommitGap {
		jrn = journal.NewMem()
		c.Ctrl.AttachJournal(jrn)
		outage := cfg.CtrlOutage
		if outage <= 0 {
			outage = 1500 * sim.Millisecond
		}
		opts := controller.RecoverOpts{SkipReconcile: cfg.SkipReconcile}
		switch {
		case cfg.CtrlCrashAtCommitGap:
			eng.ArmControllerCrashAtCommitGap(campaignVNIC, outage, opts)
		case cfg.CtrlCrashOnPrepare:
			eng.ArmControllerCrashOnPrepare(outage, opts)
		default:
			at := cfg.CtrlCrashAt
			if at <= 0 {
				at = cfg.Duration / 2
			}
			eng.ArmControllerCrash(at, outage, opts)
		}
	}

	c.Start()
	if err := c.Ctrl.ForceOffload(campaignVNIC); err != nil {
		return Report{}, err
	}
	for _, g := range gens {
		g.Start()
	}
	c.Loop.Run(cfg.Duration)
	for _, g := range gens {
		g.Stop()
	}
	// Quiesce: stop injecting faults and let in-flight work drain so
	// the final check sees a settled system.
	eng.SetGlobalFault(0, 0)
	c.Loop.Run(c.Loop.Now() + 2*sim.Second)
	eng.CheckNow()
	eng.DumpProfileFinal(c.Loop.Now())

	rep := Report{
		Seed:       cfg.Seed,
		Duration:   cfg.Duration,
		Schedule:   sched,
		Violations: eng.Violations(),
		Declared:   c.Mon.Declared.Load(),
		Failovers:  c.Ctrl.Stats.Failovers,
		Recoveries: c.Ctrl.Recoveries(),
	}
	if start, end, ok := c.Ctrl.LastRecovery(); ok && end != 0 {
		// The settle time measured from the revive (start) — replay,
		// buffered declarations, and per-vNIC reconciliation round trips.
		rep.RecoveryMs = (end - start).Millis()
	}
	if jrn != nil && eng.Failed() && cfg.ObsDumpDir != "" {
		rep.JournalPath = dumpJournal(jrn, cfg.ObsDumpDir, cfg.Seed)
	}
	if ob != nil {
		rep.TraceDigest = ob.Tracer.Digest()
		rep.DumpPath = eng.DumpPath()
	}
	rep.ProfDumpPath = eng.ProfDumpPath()
	if tracker != nil {
		rep.SLOObjective = sim.Time(tracker.Objective())
		rep.SLOBurnEvents = tracker.BurnEvents()
		if vnic, p99, ok := tracker.Worst(); ok {
			rep.SLOWorstVNIC = vnic
			rep.SLOWorstP99 = sim.Time(p99)
		}
	}
	for _, vm := range clients {
		rep.Completed += vm.Completed
	}
	d := newDigest()
	d.add(c.Loop.Fired(), uint64(c.Loop.Now()))
	d.add(c.Fab.Sends, c.Fab.Delivered, c.Fab.Lost, c.Fab.ChaosLost, c.Fab.BytesSent)
	for _, vs := range c.Switches {
		s := vs.Stats
		d.add(s.FromVM, s.FromNet, s.Delivered, s.Sent, s.Absorbed,
			s.SlowPath, s.FastPath, s.NotifySent, s.NotifyRecv,
			s.ProbesSeen, s.Mirrored, s.FlowLogged, s.NATRewrites)
		for _, n := range s.Drops {
			d.add(n)
		}
		d.add(uint64(vs.Sessions().Len()), uint64(vs.Sessions().MemBytes()))
	}
	d.add(c.Mon.ProbesSent.Load(), c.Mon.PongsSeen.Load(), c.Mon.StalePongs.Load(), c.Mon.Declared.Load(), c.Mon.GuardTrips.Load())
	e := c.Ctrl.Stats
	d.add(e.Offloads, e.Fallbacks, e.ScaleOuts, e.ScaleIns, e.Failovers, e.FEsAdded)
	d.add(e.Aborts, e.Rollbacks, e.DegradedEnters, e.DegradedExits, e.RepairRuns)
	rs := c.Ctrl.RPCStats()
	d.add(rs.Sent, rs.Retries, rs.Acked, rs.Nacked, rs.Expired, rs.DupAcks)
	if jrn != nil {
		// Folded in only when a crash was armed, so crash-free campaign
		// digests stay bit-identical to the committed goldens.
		d.add(c.Ctrl.Recoveries(), c.Ctrl.DupSideEffects(), uint64(jrn.SizeBytes()))
	}
	for _, vm := range clients {
		d.add(vm.Started, vm.Completed, vm.Accepted, vm.KernelDrops)
	}
	rep.Digest = d.sum
	if cfg.Hist != nil {
		cfg.Hist.SetChaosReport(rep.View())
	}
	return rep, nil
}

// dumpJournal writes the journal's replayable record stream as JSONL —
// the artifact a failing crash-campaign seed uploads so the recovery
// decision trail can be audited offline. Returns "" on any error (a
// failing dump must not mask the violation being reported).
func dumpJournal(j *journal.Journal, dir string, seed int64) string {
	recs, err := j.Replay()
	if err != nil {
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("nezha-journal-seed%d.jsonl", seed))
	var buf []byte
	for i := range recs {
		line, err := json.Marshal(&recs[i])
		if err != nil {
			return ""
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return ""
	}
	return path
}

// digest is FNV-1a 64 over a stream of counters.
type digest struct{ sum uint64 }

func newDigest() *digest { return &digest{sum: 14695981039346656037} }

func (d *digest) add(vs ...uint64) {
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			d.sum ^= v & 0xff
			d.sum *= 1099511628211
			v >>= 8
		}
	}
}
