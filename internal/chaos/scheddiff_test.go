package chaos

import (
	"testing"

	"nezha/internal/sim"
)

// TestSchedulerDifferentialCampaign runs whole chaos campaigns — obs
// on, full trace sampling — under both event-queue implementations and
// requires bit-identical outcomes. The campaign digest folds in the
// loop's Fired() count and final clock, so equality here proves the
// calendar queue fired exactly the same events at exactly the same
// times in exactly the same order as the binary heap, under faults,
// cancellations, and multi-second idle gaps.
func TestSchedulerDifferentialCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaigns are slow; skipping in -short")
	}
	for seed := int64(1); seed <= 5; seed++ {
		base := CampaignConfig{Seed: seed, Obs: true, ObsSampleRate: 1.0}

		heapCfg := base
		heapCfg.Scheduler = sim.SchedHeap
		h, err := RunCampaign(heapCfg)
		if err != nil {
			t.Fatalf("seed %d heap: %v", seed, err)
		}

		calCfg := base
		calCfg.Scheduler = sim.SchedCalendar
		c, err := RunCampaign(calCfg)
		if err != nil {
			t.Fatalf("seed %d calendar: %v", seed, err)
		}

		if h.Digest != c.Digest {
			t.Errorf("seed %d: campaign digest diverges: heap %d, calendar %d", seed, h.Digest, c.Digest)
		}
		if h.TraceDigest != c.TraceDigest {
			t.Errorf("seed %d: trace digest diverges: heap %d, calendar %d", seed, h.TraceDigest, c.TraceDigest)
		}
		if h.Completed != c.Completed {
			t.Errorf("seed %d: completed diverges: heap %d, calendar %d", seed, h.Completed, c.Completed)
		}
		if h.Duration != c.Duration {
			t.Errorf("seed %d: duration diverges: heap %v, calendar %v", seed, h.Duration, c.Duration)
		}
	}
}
