package chaos

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestViolationDumpNegativeControl drives the known-bad configuration
// (two-phase commit bypassed) with observability on and requires the
// engine to auto-emit a flight-recorder dump at the moment the
// no-blackhole invariant fires. The dump must carry the failing seed,
// the control-plane event lead-up, and hop-by-hop packet traces —
// the artifacts an engineer needs to debug the soak failure.
func TestViolationDumpNegativeControl(t *testing.T) {
	dir := t.TempDir()
	var rep Report
	for seed := int64(1); seed <= 10; seed++ {
		r, err := RunCampaign(CampaignConfig{
			Seed: seed, BypassTwoPhase: true,
			Obs: true, ObsDumpDir: dir,
		})
		if err != nil {
			t.Fatalf("seed %d: campaign failed to build: %v", seed, err)
		}
		if r.Failed() {
			rep = r
			break
		}
	}
	if !rep.Failed() {
		t.Fatal("bypassed two-phase commit never violated an invariant; negative control is broken")
	}
	if rep.DumpPath == "" {
		t.Fatal("invariant violated with obs enabled but no flight-recorder dump was written")
	}
	raw, err := os.ReadFile(rep.DumpPath)
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	dump := string(raw)
	for _, want := range []string{
		"# nezha flight-recorder dump",
		"seed=" + strconv.FormatInt(rep.Seed, 10),
		"invariant=",
		"== spans",
		"== events",
		"== flights",
		"unsafe-commit",
		"flight id=",
		"gw-pick", // hop-by-hop trace includes the gateway steering stage
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump %s missing %q", rep.DumpPath, want)
		}
	}
	if rep.TraceDigest == 0 {
		t.Error("obs-enabled campaign produced a zero trace digest; tracing recorded nothing")
	}
}

// TestTraceDigestDeterminism is the sampling-determinism guard: the
// same seed and sample rate must produce a bit-identical flight-trace
// digest across runs (the per-packet sample decision is a hash of
// (seed, packet ID), not a shared rng stream), and a different seed
// must diverge.
func TestTraceDigestDeterminism(t *testing.T) {
	cfg := CampaignConfig{Seed: 7, Obs: true, ObsSampleRate: 0.25}
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest == 0 {
		t.Fatal("trace digest is zero; sampling at 25% recorded no hops")
	}
	if a.TraceDigest != b.TraceDigest {
		t.Errorf("trace digest diverged across identical runs: %#x vs %#x", a.TraceDigest, b.TraceDigest)
	}
	if a.Digest != b.Digest {
		t.Errorf("end-state digest diverged with obs enabled: %#x vs %#x", a.Digest, b.Digest)
	}
	other, err := RunCampaign(CampaignConfig{Seed: 8, Obs: true, ObsSampleRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if other.TraceDigest == a.TraceDigest {
		t.Errorf("seeds 7 and 8 produced identical trace digests (%#x); digest is not sensitive to the run", a.TraceDigest)
	}
}

// TestObsDoesNotPerturbSimulation guards the observer effect: wiring
// the obs layer into a campaign must not change the simulated
// behavior — the end-state digest with obs on must equal the digest
// with obs off for the same seed.
func TestObsDoesNotPerturbSimulation(t *testing.T) {
	plain, err := RunCampaign(CampaignConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunCampaign(CampaignConfig{Seed: 9, Obs: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Digest != observed.Digest {
		t.Errorf("enabling obs changed the run: digest %#x (off) vs %#x (on)", plain.Digest, observed.Digest)
	}
}
