package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramExactQuantiles(t *testing.T) {
	h := NewHistogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.P50(); math.Abs(got-50) > 1 {
		t.Fatalf("P50 = %v, want ~50", got)
	}
	if got := h.P99(); math.Abs(got-99) > 1 {
		t.Fatalf("P99 = %v, want ~99", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should return zeros")
	}
	if h.Count() != 0 {
		t.Fatal("empty count nonzero")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram("one")
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if h.Quantile(q) != 42 {
			t.Fatalf("Quantile(%v) = %v, want 42", q, h.Quantile(q))
		}
	}
}

func TestHistogramQuantileClamped(t *testing.T) {
	h := NewHistogram("clamp")
	h.Observe(1)
	h.Observe(2)
	if h.Quantile(-0.5) != 1 {
		t.Fatal("negative quantile should clamp to min")
	}
	if h.Quantile(1.5) != 2 {
		t.Fatal("quantile >1 should clamp to max")
	}
}

func TestHistogramSketchMode(t *testing.T) {
	h := NewHistogramCap("sk", 100)
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Sketch mode promises ~2% relative error.
	p50 := h.P50()
	if math.Abs(p50-5000)/5000 > 0.05 {
		t.Fatalf("sketch P50 = %v, want ~5000", p50)
	}
	p99 := h.P99()
	if math.Abs(p99-9900)/9900 > 0.05 {
		t.Fatalf("sketch P99 = %v, want ~9900", p99)
	}
}

func TestHistogramSketchZeroes(t *testing.T) {
	h := NewHistogramCap("z", 10)
	for i := 0; i < 1000; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	if got := h.P50(); got != 0 {
		t.Fatalf("P50 with mostly zeros = %v, want 0", got)
	}
	if got := h.Quantile(0.9999); math.Abs(got-100)/100 > 0.05 {
		t.Fatalf("tail quantile = %v, want ~100", got)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	h := NewHistogram("interleave")
	h.Observe(10)
	_ = h.P50()
	h.Observe(1)
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("after interleaved observe, Quantile(0)=%v want 1", got)
	}
}

func TestCDFMonotonic(t *testing.T) {
	h := NewHistogram("cdf")
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i * i))
	}
	pts := h.CDF(50)
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Fatalf("CDF values not monotonic at %d: %v < %v", i, pts[i][0], pts[i-1][0])
		}
		if pts[i][1] <= pts[i-1][1] {
			t.Fatalf("CDF fractions not increasing at %d", i)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	c := NewCounter("conns")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	g := NewGauge("util")
	g.Set(0.5)
	g.Add(0.25)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", g.Value())
	}
	if c.Name() != "conns" || g.Name() != "util" {
		t.Fatal("names lost")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("cpu")
	s.Record(0, 0.1)
	s.Record(1, 0.9)
	s.Record(2, 0.4)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	tm, v := s.At(1)
	if tm != 1 || v != 0.9 {
		t.Fatalf("At(1) = %v,%v", tm, v)
	}
	if s.MaxValue() != 0.9 {
		t.Fatalf("MaxValue = %v", s.MaxValue())
	}
}

func TestSeriesEmptyMax(t *testing.T) {
	s := NewSeries("empty")
	if s.MaxValue() != 0 {
		t.Fatal("empty series MaxValue should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("cps", 123456.0)
	tb.AddRow("gain", 3.3)
	out := tb.String()
	if !strings.Contains(out, "cps") || !strings.Contains(out, "123456") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	if !strings.Contains(out, "3.30") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestSummaryContainsPercentiles(t *testing.T) {
	h := NewHistogram("x")
	h.Observe(1)
	s := h.Summary()
	for _, want := range []string{"p50", "p90", "p99", "p999", "p9999"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %s: %s", want, s)
		}
	}
}

// Property: for any sample set, quantiles are monotone in q and
// bounded by [min, max].
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram("q")
		for _, v := range raw {
			h.Observe(float64(v % 100000))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: sketch-mode quantiles stay within 5% of exact-mode
// quantiles for positive samples.
func TestQuickSketchAccuracy(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 50 {
			return true
		}
		exact := NewHistogram("e")
		sk := NewHistogramCap("s", 10)
		for _, v := range raw {
			x := float64(v) + 1 // strictly positive
			exact.Observe(x)
			sk.Observe(x)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			e, s := exact.Quantile(q), sk.Quantile(q)
			if e == 0 {
				continue
			}
			if math.Abs(e-s)/e > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func BenchmarkHistogramSketchObserve(b *testing.B) {
	h := NewHistogramCap("bench", 1)
	h.Observe(1)
	h.Observe(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) + 1)
	}
}
