// Package metrics provides the measurement primitives shared by all
// experiments: streaming histograms with high-percentile queries
// (P50…P9999), windowed time series, CDFs, and counters.
//
// The paper reports distribution summaries at extreme percentiles
// (e.g. P9999 CPU utilization across O(10K) vSwitches, Table 4's P999
// completion times), so the histogram keeps exact samples up to a
// bound and switches to a log-bucketed sketch beyond it, trading a
// small relative error for bounded memory.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram records float64 samples and answers quantile queries.
// Up to maxExact samples it is exact; beyond that it degrades to a
// log-bucketed approximation with ~1% relative error.
type Histogram struct {
	name     string
	samples  []float64
	sorted   bool
	maxExact int

	// sketch mode
	sketch  []uint64 // log buckets
	zero    uint64   // count of zero / negative samples
	count   uint64
	sum     float64
	min     float64
	max     float64
	sketchy bool
}

const (
	defaultMaxExact = 1 << 20
	// gamma for ~1% relative error buckets: bucket(v) = ceil(log(v)/log(gamma))
	sketchGamma = 1.02
)

// NewHistogram returns an empty histogram with the default exact-mode
// capacity (1M samples).
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, maxExact: defaultMaxExact, min: math.Inf(1), max: math.Inf(-1)}
}

// NewHistogramCap returns a histogram that switches to sketch mode
// after maxExact samples.
func NewHistogramCap(name string, maxExact int) *Histogram {
	if maxExact < 1 {
		maxExact = 1
	}
	return &Histogram{name: name, maxExact: maxExact, min: math.Inf(1), max: math.Inf(-1)}
}

// Name returns the histogram's label.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if !h.sketchy {
		h.samples = append(h.samples, v)
		h.sorted = false
		if len(h.samples) > h.maxExact {
			h.toSketch()
		}
		return
	}
	h.sketchObserve(v)
}

func (h *Histogram) toSketch() {
	h.sketchy = true
	old := h.samples
	h.samples = nil
	for _, v := range old {
		h.sketchObserve(v)
	}
}

func (h *Histogram) sketchObserve(v float64) {
	if v <= 0 {
		h.zero++
		return
	}
	idx := int(math.Ceil(math.Log(v) / math.Log(sketchGamma)))
	// Shift so tiny values land at bucket 0; clamp the range.
	idx += 2048
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.sketch) {
		grown := make([]uint64, idx+1)
		copy(grown, h.sketch)
		h.sketch = grown
	}
	h.sketch[idx]++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (q in [0,1]). With no samples it
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if !h.sketchy {
		if !h.sorted {
			sort.Float64s(h.samples)
			h.sorted = true
		}
		idx := int(q * float64(len(h.samples)-1))
		return h.samples[idx]
	}
	target := uint64(q * float64(h.count-1))
	var seen uint64
	if h.zero > 0 {
		seen = h.zero
		if target < seen {
			return 0
		}
	}
	for i, c := range h.sketch {
		seen += c
		if target < seen {
			return math.Pow(sketchGamma, float64(i-2048))
		}
	}
	return h.max
}

// P50, P90, P99, P999, P9999 are the percentile shorthands the paper
// reports everywhere.
func (h *Histogram) P50() float64   { return h.Quantile(0.50) }
func (h *Histogram) P90() float64   { return h.Quantile(0.90) }
func (h *Histogram) P99() float64   { return h.Quantile(0.99) }
func (h *Histogram) P999() float64  { return h.Quantile(0.999) }
func (h *Histogram) P9999() float64 { return h.Quantile(0.9999) }

// Summary formats the standard percentile row.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("%s: n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g p999=%.4g p9999=%.4g max=%.4g",
		h.name, h.count, h.Mean(), h.P50(), h.P90(), h.P99(), h.P999(), h.P9999(), h.Max())
}

// CDF returns (value, cumulative fraction) pairs at n evenly spaced
// quantiles, suitable for plotting Fig 4-style curves.
func (h *Histogram) CDF(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out[i] = [2]float64{h.Quantile(q), q}
	}
	return out
}

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    uint64
}

// NewCounter returns a zeroed counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name returns the counter's label.
func (c *Counter) Name() string { return c.name }

// Gauge is a point-in-time value.
type Gauge struct {
	name string
	v    float64
}

// NewGauge returns a zeroed gauge.
func NewGauge(name string) *Gauge { return &Gauge{name: name} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Name returns the gauge's label.
func (g *Gauge) Name() string { return g.name }

// Series is a (time, value) sequence used for utilization traces such
// as Fig 11's CPU-over-time curves.
type Series struct {
	name string
	ts   []float64
	vs   []float64
}

// NewSeries returns an empty series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Record appends a point. Time units are whatever the caller uses
// consistently (experiments use seconds of virtual time).
func (s *Series) Record(t, v float64) {
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.ts) }

// At returns the i-th point.
func (s *Series) At(i int) (t, v float64) { return s.ts[i], s.vs[i] }

// Name returns the series label.
func (s *Series) Name() string { return s.name }

// MaxValue returns the largest recorded value, or 0 for an empty series.
func (s *Series) MaxValue() float64 {
	m := 0.0
	for _, v := range s.vs {
		if v > m {
			m = v
		}
	}
	return m
}

// Table renders experiment output in the aligned rows the benchmark
// harness prints. Columns are padded to the widest cell.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, hh := range t.Header {
		widths[i] = len(hh)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
