// Package workload provides the traffic side of the evaluation: a VM
// model whose kernel stack has finite connection-handling capacity
// (the bottleneck CPS shifts to once Nezha removes the vSwitch limit,
// Fig 10), a netperf TCP_CRR-style short-connection generator (the
// paper's CPS workload), a concurrent-flow prober, and a SYN-flood
// generator (§7.3).
package workload

import (
	"nezha/internal/metrics"
	"nezha/internal/nic"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/vswitch"
)

// VM kernel calibration. MaxCPS follows Amdahl's law in the vCPU
// count: per-core throughput discounted by a serial fraction standing
// in for kernel locks and connection-table contention (§6.2.2).
const (
	DefaultPerCoreCPS     = 15000.0
	DefaultSerialFraction = 0.02
	// ServerPort is the well-known port the server role answers on.
	ServerPort = 80
	// kernelQueue bounds how long a connection may wait in the
	// kernel backlog before being dropped.
	kernelQueue = 10 * sim.Millisecond
)

// MaxCPS returns the kernel-limited connections/sec for a VM with
// vcpus cores.
func MaxCPS(vcpus int) float64 {
	if vcpus < 1 {
		vcpus = 1
	}
	n := float64(vcpus)
	return DefaultPerCoreCPS * n / (1 + DefaultSerialFraction*(n-1))
}

type connState struct {
	start     sim.Time
	dstIP     packet.IPv4
	dstPort   uint16
	completed bool
	onDone    func()
}

// VM models a guest's network endpoint: a client/server state machine
// over the simulated TCP handshake plus a kernel-capacity model.
type VM struct {
	loop *sim.Loop
	vs   *vswitch.VSwitch

	VNIC uint32
	VPC  uint32
	IP   packet.IPv4

	kernel    *nic.CPU
	connCost  uint64
	pktCost   uint64
	idGen     *uint64
	reqBytes  int
	respBytes int

	conns map[uint16]*connState

	// Counters.
	Started     uint64 // client connections initiated
	Completed   uint64 // client connections fully closed
	Accepted    uint64 // server connections accepted
	KernelDrops uint64 // connections dropped by the kernel backlog
	Latency     *metrics.Histogram
	// OnComplete, when set, observes every completed client
	// connection's latency — scenario harnesses use it to bucket
	// latencies by phase (e.g. p99 during load ramps) without a second
	// histogram inside the VM.
	OnComplete func(lat sim.Time)
}

// NewVM attaches a VM with the given vCPU count to a vSwitch-resident
// vNIC. idGen supplies unique packet IDs across the simulation.
func NewVM(loop *sim.Loop, vs *vswitch.VSwitch, vnic, vpc uint32, ip packet.IPv4, vcpus int, idGen *uint64) *VM {
	maxCPS := MaxCPS(vcpus)
	vm := &VM{
		loop: loop,
		vs:   vs,
		VNIC: vnic,
		VPC:  vpc,
		IP:   ip,
		// Kernel modeled as a 1 GHz single server: one connection
		// costs 1e9/maxCPS cycles.
		kernel:    nic.NewCPU(loop, 1, 1_000_000_000, kernelQueue),
		connCost:  uint64(1e9 / maxCPS),
		idGen:     idGen,
		reqBytes:  128,
		respBytes: 512,
		conns:     make(map[uint16]*connState),
		Latency:   metrics.NewHistogramCap("conn-latency-us", 1<<18),
	}
	vm.pktCost = vm.connCost / 10
	return vm
}

// ScaleKernel multiplies the VM's kernel capacity by factor (<1
// shrinks it). Scaled-down rigs use it so the VM-to-vSwitch
// capability ratio matches production despite the smaller vSwitches.
func (vm *VM) ScaleKernel(factor float64) {
	if factor <= 0 {
		return
	}
	vm.connCost = uint64(float64(vm.connCost) / factor)
	vm.pktCost = vm.connCost / 10
}

func (vm *VM) nextID() uint64 {
	*vm.idGen++
	return *vm.idGen
}

func (vm *VM) send(ft packet.FiveTuple, flags packet.TCPFlags, payload int, sentAt int64) {
	p := packet.GetStamped(sentAt, vm.nextID(), vm.VPC, vm.VNIC, ft, packet.DirTX, flags, payload)
	vm.vs.FromVM(p)
}

// Open initiates one client connection to dst:dstPort from the given
// source port. Each in-flight connection needs a distinct sport.
func (vm *VM) Open(sport uint16, dst packet.IPv4, dstPort uint16) {
	vm.OpenCB(sport, dst, dstPort, nil)
}

// OpenCB is Open with a completion callback, fired when the
// transaction fully closes (closed-loop generators reopen from it).
func (vm *VM) OpenCB(sport uint16, dst packet.IPv4, dstPort uint16, onDone func()) {
	vm.Started++
	vm.conns[sport] = &connState{start: vm.loop.Now(), dstIP: dst, dstPort: dstPort, onDone: onDone}
	ft := packet.FiveTuple{
		SrcIP: vm.IP, DstIP: dst,
		SrcPort: sport, DstPort: dstPort, Proto: packet.ProtoTCP,
	}
	vm.send(ft, packet.FlagSYN, 0, int64(vm.loop.Now()))
}

// Abort abandons an in-flight client connection (timeout); any
// residual vSwitch state ages out on its own.
func (vm *VM) Abort(sport uint16) {
	delete(vm.conns, sport)
}

// OnDeliver is the vSwitch delivery callback target. The VM is the
// packet's terminal consumer: it is released back to the pool here,
// after the handlers copy out what they need.
func (vm *VM) OnDeliver(vnic uint32, p *packet.Packet, lat sim.Time) {
	if vnic != vm.VNIC {
		return
	}
	if p.Tuple.DstPort == ServerPort {
		vm.serverHandle(p)
	} else if p.Tuple.SrcPort == ServerPort {
		vm.clientHandle(p)
	}
	p.Release()
}

// serverHandle implements the passive side: accept, respond, close.
// The kernel completions fire after OnDeliver releases p, so they
// capture copies of its fields, never p itself.
func (vm *VM) serverHandle(p *packet.Packet) {
	reply := p.Tuple.Reverse()
	sentAt := p.SentAt
	switch {
	case p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK):
		// New connection: charge the kernel; beyond capacity the
		// backlog drops it (the Fig 10 VM bottleneck).
		vm.kernel.Submit(vm.connCost, func(ok bool, _ sim.Time) {
			if !ok {
				vm.KernelDrops++
				return
			}
			vm.Accepted++
			vm.send(reply, packet.FlagSYN|packet.FlagACK, 0, sentAt)
		})
	case p.Flags.Has(packet.FlagFIN):
		vm.kernel.Submit(vm.pktCost, func(ok bool, _ sim.Time) {
			if ok {
				vm.send(reply, packet.FlagFIN|packet.FlagACK, 0, sentAt)
			}
		})
	case p.PayloadLen > 0:
		// Request: produce the response.
		vm.kernel.Submit(vm.pktCost, func(ok bool, _ sim.Time) {
			if ok {
				vm.send(reply, packet.FlagACK, vm.respBytes, sentAt)
			}
		})
	}
}

// clientHandle advances the active side's per-connection state
// machine: SYNACK → request, response → FIN, FINACK → complete.
func (vm *VM) clientHandle(p *packet.Packet) {
	sport := p.Tuple.DstPort
	c, ok := vm.conns[sport]
	if !ok || c.completed {
		return
	}
	reply := p.Tuple.Reverse()
	switch {
	case p.Flags.Has(packet.FlagSYN) && p.Flags.Has(packet.FlagACK):
		vm.send(reply, packet.FlagACK, vm.reqBytes, int64(c.start))
	case p.Flags.Has(packet.FlagFIN):
		c.completed = true
		vm.Completed++
		lat := vm.loop.Now() - c.start
		vm.Latency.Observe(lat.Micros())
		if vm.OnComplete != nil {
			vm.OnComplete(lat)
		}
		delete(vm.conns, sport)
		if c.onDone != nil {
			c.onDone()
		}
	case p.PayloadLen > 0:
		vm.send(reply, packet.FlagFIN|packet.FlagACK, 0, int64(c.start))
	}
}

// InFlight reports the client connections not yet completed.
func (vm *VM) InFlight() int { return len(vm.conns) }
