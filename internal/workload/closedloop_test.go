package workload

import (
	"testing"

	"nezha/internal/sim"
)

func TestClosedCRRSaturatesBottleneck(t *testing.T) {
	// With ample workers, closed-loop throughput approaches the
	// bottleneck capacity instead of collapsing like open-loop
	// overload would.
	b := newBed(t, 1) // server kernel cap ≈ MaxCPS(1) = 15K
	g := NewClosedCRR(b.loop, b.client, ipS, 64, 100*sim.Millisecond)
	g.Start()
	b.loop.Run(3 * sim.Second)
	g.Stop()
	b.loop.Run(b.loop.Now() + sim.Second)
	cps := float64(b.client.Completed) / 3.0
	cap := MaxCPS(1)
	if cps < cap*0.5 {
		t.Fatalf("closed-loop CPS = %.0f, want >= 50%% of the %.0f kernel cap", cps, cap)
	}
	if cps > cap*1.3 {
		t.Fatalf("closed-loop CPS = %.0f exceeds the %.0f kernel cap", cps, cap)
	}
}

func TestClosedCRRStops(t *testing.T) {
	b := newBed(t, 8)
	g := NewClosedCRR(b.loop, b.client, ipS, 8, 50*sim.Millisecond)
	g.Start()
	b.loop.Run(500 * sim.Millisecond)
	g.Stop()
	b.loop.Run(b.loop.Now() + sim.Second)
	done := b.client.Started
	b.loop.Run(b.loop.Now() + sim.Second)
	if b.client.Started != done {
		t.Fatal("workers kept opening after Stop")
	}
}

func TestClosedCRRTimeoutRecovers(t *testing.T) {
	// Crash the server switch: every transaction times out, but the
	// workers keep cycling (Abandoned grows) instead of deadlocking.
	b := newBed(t, 8)
	b.swB.Crash()
	g := NewClosedCRR(b.loop, b.client, ipS, 4, 50*sim.Millisecond)
	g.Start()
	b.loop.Run(sim.Second)
	g.Stop()
	b.loop.Run(b.loop.Now() + sim.Second)
	if g.Abandoned == 0 {
		t.Fatal("no abandonments despite a dead server")
	}
	if b.client.Started < 20 {
		t.Fatalf("workers stalled: only %d starts", b.client.Started)
	}
	if b.client.Completed != 0 {
		t.Fatal("completions through a crashed switch")
	}
	// Revive: the next run completes again.
	b.swB.Revive()
	g2 := NewClosedCRR(b.loop, b.client, ipS, 4, 50*sim.Millisecond)
	g2.Start()
	b.loop.Run(b.loop.Now() + sim.Second)
	g2.Stop()
	b.loop.Run(b.loop.Now() + sim.Second)
	if b.client.Completed == 0 {
		t.Fatal("no recovery after revive")
	}
}

func TestClosedCRRWorkerFloor(t *testing.T) {
	b := newBed(t, 8)
	g := NewClosedCRR(b.loop, b.client, ipS, 0, 0) // clamps to 1 worker, default timeout
	g.Start()
	b.loop.Run(200 * sim.Millisecond)
	g.Stop()
	b.loop.Run(b.loop.Now() + sim.Second)
	if g.Completed() == 0 {
		t.Fatal("single-worker generator made no progress")
	}
}

func TestScaleKernel(t *testing.T) {
	b := newBed(t, 8)
	before := b.server.connCost
	b.server.ScaleKernel(0.5)
	if b.server.connCost != before*2 {
		t.Fatalf("ScaleKernel(0.5) should double connCost: %d -> %d", before, b.server.connCost)
	}
	b.server.ScaleKernel(0) // no-op
	if b.server.connCost != before*2 {
		t.Fatal("ScaleKernel(0) must be a no-op")
	}
}

func TestAbortRemovesConn(t *testing.T) {
	b := newBed(t, 8)
	b.client.Open(5000, ipS, ServerPort)
	if b.client.InFlight() != 1 {
		t.Fatal("open not tracked")
	}
	b.client.Abort(5000)
	if b.client.InFlight() != 0 {
		t.Fatal("abort did not remove")
	}
	// Late replies for the aborted conn are ignored gracefully.
	b.loop.RunAll()
	if b.client.Completed != 0 {
		t.Fatal("aborted conn completed")
	}
}
