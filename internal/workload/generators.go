package workload

import (
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/vswitch"
)

// CRR drives netperf TCP_CRR-style traffic: short connect /
// request / response / close transactions at a target open rate —
// the paper's CPS workload (§6.2.1). Arrivals are Poisson.
type CRR struct {
	loop   *sim.Loop
	rng    *sim.Rand
	client *VM
	dst    packet.IPv4
	rate   float64
	sport  uint16
	ticker sim.EventRef
	done   bool
}

// NewCRR builds a generator opening connections from client to
// dst:ServerPort at ratePerSec.
func NewCRR(loop *sim.Loop, rng *sim.Rand, client *VM, dst packet.IPv4, ratePerSec float64) *CRR {
	return &CRR{loop: loop, rng: rng, client: client, dst: dst, rate: ratePerSec, sport: 1024}
}

// SetRate changes the open rate (for ramp experiments).
func (g *CRR) SetRate(r float64) { g.rate = r }

// Rate returns the current target rate.
func (g *CRR) Rate() float64 { return g.rate }

// Start begins opening connections until Stop.
func (g *CRR) Start() {
	g.done = false
	g.arm()
}

// Stop halts new opens; in-flight transactions drain naturally.
func (g *CRR) Stop() {
	g.done = true
	g.ticker.Cancel()
}

func (g *CRR) arm() {
	if g.done {
		return
	}
	if g.rate <= 0 {
		// Paused: poll for a rate change (ramp scripts may raise it).
		g.ticker = g.loop.Schedule(10*sim.Millisecond, g.arm)
		return
	}
	gap := sim.Time(g.rng.ExpFloat64() / g.rate * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	g.ticker = g.loop.Schedule(gap, func() {
		g.open()
		g.arm()
	})
}

func (g *CRR) open() {
	g.sport++
	if g.sport < 1024 {
		g.sport = 1024
	}
	g.client.Open(g.sport, g.dst, ServerPort)
}

// CompletedCPS reports completed transactions per second over the
// elapsed window.
func (g *CRR) CompletedCPS(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(g.client.Completed) / elapsed.Seconds()
}

// FlowHolder opens persistent connections and keeps them alive with
// periodic keepalives, probing how many concurrent flows the path can
// sustain (the #concurrent-flows experiments).
type FlowHolder struct {
	loop      *sim.Loop
	client    *VM
	dst       packet.IPv4
	keepalive sim.Time
	next      uint16
	nextIPOff uint32
	open      []packet.FiveTuple
}

// NewFlowHolder builds a holder from client to dst.
func NewFlowHolder(loop *sim.Loop, client *VM, dst packet.IPv4, keepalive sim.Time) *FlowHolder {
	return &FlowHolder{loop: loop, client: client, dst: dst, keepalive: keepalive, next: 1024}
}

// OpenN opens n new persistent connections (SYN only — the holder
// does not wait for establishment; the prober inspects the server
// vSwitch's session table).
//
// Source ports cycle through the 16-bit space; beyond ~64k flows the
// source IP is varied to keep 5-tuples distinct, as a multi-client
// workload would.
func (h *FlowHolder) OpenN(n int) {
	if n <= 0 {
		return
	}
	syns := make([]*packet.Packet, 0, n)
	tuples := make([]packet.FiveTuple, 0, n)
	for i := 0; i < n; i++ {
		h.next++
		if h.next < 1024 {
			h.next = 1024
			h.nextIPOff++
		}
		ft := packet.FiveTuple{
			SrcIP: h.client.IP + packet.IPv4(h.nextIPOff<<8),
			DstIP: h.dst, SrcPort: h.next, DstPort: ServerPort,
			Proto: packet.ProtoTCP,
		}
		h.open = append(h.open, ft)
		tuples = append(tuples, ft)
		p := packet.GetStamped(int64(h.loop.Now()), h.client.nextID(), h.client.VPC, h.client.VNIC, ft, packet.DirTX, packet.FlagSYN, 0)
		syns = append(syns, p)
	}
	h.client.vs.FromVMBurst(syns)
	// Complete the handshakes shortly after (the server SYNACKs are in
	// flight): persistent flows must reach Established or the short SYN
	// aging reclaims them (§7.3). One event acks the whole batch.
	h.loop.Schedule(20*sim.Millisecond, func() {
		acks := make([]*packet.Packet, 0, len(tuples))
		for _, ft := range tuples {
			ack := packet.GetStamped(int64(h.loop.Now()), h.client.nextID(), h.client.VPC, h.client.VNIC, ft, packet.DirTX, packet.FlagACK, 0)
			acks = append(acks, ack)
		}
		h.client.vs.FromVMBurst(acks)
	})
}

// RampN opens n connections paced evenly over the window — an
// instantaneous burst would just hit the CPU queueing bound.
func (h *FlowHolder) RampN(n int, window sim.Time) {
	if n <= 0 {
		return
	}
	gap := window / sim.Time(n)
	for i := 0; i < n; i++ {
		h.loop.Schedule(gap*sim.Time(i), func() { h.OpenN(1) })
	}
}

// KeepAlive re-touches every open flow once (call periodically to
// defeat aging). The touches enter the vSwitch as one burst.
func (h *FlowHolder) KeepAlive() {
	if len(h.open) == 0 {
		return
	}
	batch := make([]*packet.Packet, 0, len(h.open))
	for _, ft := range h.open {
		p := packet.GetStamped(int64(h.loop.Now()), h.client.nextID(), h.client.VPC, h.client.VNIC, ft, packet.DirTX, packet.FlagACK, 32)
		batch = append(batch, p)
	}
	h.client.vs.FromVMBurst(batch)
}

// KeepAlivePaced spreads one keepalive per open flow evenly over the
// window, avoiding a burst that would just hit the CPU queue bound.
func (h *FlowHolder) KeepAlivePaced(window sim.Time) {
	n := len(h.open)
	if n == 0 {
		return
	}
	gap := window / sim.Time(n)
	for i, ft := range h.open {
		ft := ft
		h.loop.Schedule(gap*sim.Time(i), func() {
			p := packet.GetStamped(int64(h.loop.Now()), h.client.nextID(), h.client.VPC, h.client.VNIC, ft, packet.DirTX, packet.FlagACK, 32)
			h.client.vs.FromVM(p)
		})
	}
}

// Opened reports the flows opened so far.
func (h *FlowHolder) Opened() int { return len(h.open) }

// SYNFlood sends a stream of SYNs from spoofed ports that never
// complete handshakes — the §7.3 memory-pressure attack on the BE.
type SYNFlood struct {
	loop   *sim.Loop
	rng    *sim.Rand
	vs     *vswitch.VSwitch
	vnic   uint32
	vpc    uint32
	srcIP  packet.IPv4
	dst    packet.IPv4
	rate   float64
	idGen  *uint64
	ticker sim.EventRef
	done   bool
	Sent   uint64
}

// NewSYNFlood builds a flood source injecting at the given vSwitch.
func NewSYNFlood(loop *sim.Loop, rng *sim.Rand, vs *vswitch.VSwitch, vnic, vpc uint32, srcIP, dst packet.IPv4, rate float64, idGen *uint64) *SYNFlood {
	return &SYNFlood{loop: loop, rng: rng, vs: vs, vnic: vnic, vpc: vpc, srcIP: srcIP, dst: dst, rate: rate, idGen: idGen}
}

// Start begins flooding until Stop.
func (f *SYNFlood) Start() {
	f.done = false
	f.arm()
}

// Stop halts the flood.
func (f *SYNFlood) Stop() {
	f.done = true
	f.ticker.Cancel()
}

func (f *SYNFlood) arm() {
	if f.done || f.rate <= 0 {
		return
	}
	gap := sim.Time(f.rng.ExpFloat64() / f.rate * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	f.ticker = f.loop.Schedule(gap, func() {
		*f.idGen++
		ft := packet.FiveTuple{
			SrcIP: f.srcIP, DstIP: f.dst,
			SrcPort: uint16(1024 + f.rng.Intn(60000)), DstPort: ServerPort,
			Proto: packet.ProtoTCP,
		}
		p := packet.GetStamped(int64(f.loop.Now()), *f.idGen, f.vpc, f.vnic, ft, packet.DirTX, packet.FlagSYN, 0)
		f.Sent++
		f.vs.FromVM(p)
		f.arm()
	})
}

// Pinger emits fixed-rate single-flow traffic for latency probing
// (Fig 12's single flow at adjustable packet rate).
type Pinger struct {
	loop  *sim.Loop
	vm    *VM
	dst   packet.IPv4
	sport uint16
}

// NewPinger builds a single-flow source from vm to dst.
func NewPinger(loop *sim.Loop, vm *VM, dst packet.IPv4, sport uint16) *Pinger {
	return &Pinger{loop: loop, vm: vm, dst: dst, sport: sport}
}

// Run emits n packets at the given per-second rate on one flow (the
// flow is pre-established with a SYN so subsequent packets ride the
// fast path).
func (pg *Pinger) Run(rate float64, n int) {
	ft := packet.FiveTuple{
		SrcIP: pg.vm.IP, DstIP: pg.dst,
		SrcPort: pg.sport, DstPort: ServerPort, Proto: packet.ProtoTCP,
	}
	syn := packet.GetStamped(int64(pg.loop.Now()), pg.vm.nextID(), pg.vm.VPC, pg.vm.VNIC, ft, packet.DirTX, packet.FlagSYN, 0)
	pg.vm.vs.FromVM(syn)
	gap := sim.Time(float64(sim.Second) / rate)
	for i := 1; i <= n; i++ {
		i := i
		pg.loop.Schedule(gap*sim.Time(i), func() {
			p := packet.GetStamped(int64(pg.loop.Now()), pg.vm.nextID(), pg.vm.VPC, pg.vm.VNIC, ft, packet.DirTX, packet.FlagACK, 64)
			pg.vm.vs.FromVM(p)
		})
	}
}
