package workload

import (
	"math"
	"testing"

	"nezha/internal/fabric"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/state"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
)

type bed struct {
	loop     *sim.Loop
	fab      *fabric.Fabric
	gw       *fabric.Gateway
	swA, swB *vswitch.VSwitch
	client   *VM
	server   *VM
	idGen    uint64
}

var (
	addrA = packet.MakeIP(192, 168, 0, 1)
	addrB = packet.MakeIP(192, 168, 0, 2)
	ipC   = packet.MakeIP(10, 0, 1, 1)
	ipS   = packet.MakeIP(10, 0, 2, 1)
)

func newBed(t *testing.T, serverVCPUs int) *bed {
	t.Helper()
	b := &bed{loop: sim.NewLoop(11)}
	b.fab = fabric.New(b.loop)
	b.gw = fabric.NewGateway(b.loop)
	b.swA = vswitch.New(b.loop, b.fab, b.gw, vswitch.Config{Addr: addrA})
	b.swB = vswitch.New(b.loop, b.fab, b.gw, vswitch.Config{Addr: addrB})

	crs := tables.NewRuleSet(1, 7)
	crs.Route.Add(tables.MakePrefix(packet.MakeIP(10, 0, 2, 0), 24), packet.IPv4(2))
	if err := b.swA.AddVNIC(crs, false); err != nil {
		t.Fatal(err)
	}
	srs := tables.NewRuleSet(2, 7)
	srs.Route.Add(tables.MakePrefix(packet.MakeIP(10, 0, 1, 0), 24), packet.IPv4(1))
	if err := b.swB.AddVNIC(srs, false); err != nil {
		t.Fatal(err)
	}
	b.gw.Set(1, addrA)
	b.gw.Set(2, addrB)

	b.client = NewVM(b.loop, b.swA, 1, 7, ipC, 8, &b.idGen)
	b.server = NewVM(b.loop, b.swB, 2, 7, ipS, serverVCPUs, &b.idGen)
	b.swA.SetDelivery(b.client.OnDeliver)
	b.swB.SetDelivery(b.server.OnDeliver)
	return b
}

func TestMaxCPSShape(t *testing.T) {
	prev := 0.0
	for _, n := range []int{1, 8, 16, 32, 64} {
		v := MaxCPS(n)
		if v <= prev {
			t.Fatalf("MaxCPS not increasing at %d vCPUs: %v <= %v", n, v, prev)
		}
		prev = v
	}
	// Sub-linear: doubling cores must not double throughput at scale.
	if MaxCPS(64) >= 2*MaxCPS(32)*0.95 {
		t.Fatalf("no kernel contention visible: 32=%v 64=%v", MaxCPS(32), MaxCPS(64))
	}
	if MaxCPS(0) != MaxCPS(1) {
		t.Fatal("vcpus clamp broken")
	}
}

func TestCRRTransactionCompletes(t *testing.T) {
	b := newBed(t, 8)
	b.client.Open(2000, ipS, ServerPort)
	b.loop.RunAll()
	if b.client.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (server accepted=%d, drops A=%v B=%v)",
			b.client.Completed, b.server.Accepted, b.swA.Stats.Drops, b.swB.Stats.Drops)
	}
	if b.client.InFlight() != 0 {
		t.Fatal("connection state leaked")
	}
	if b.client.Latency.Count() != 1 {
		t.Fatal("latency not recorded")
	}
	// 6 packets, 1 hop each, ~5 µs/hop + processing: latency must be
	// tens of microseconds.
	lat := b.client.Latency.Mean()
	if lat < 10 || lat > 1000 {
		t.Fatalf("transaction latency = %v µs, want tens of µs", lat)
	}
}

func TestCRRLowRateAllComplete(t *testing.T) {
	b := newBed(t, 8)
	g := NewCRR(b.loop, b.loop.Rand(), b.client, ipS, 1000)
	g.Start()
	b.loop.Schedule(sim.Second, func() { g.Stop() })
	b.loop.RunAll()
	frac := float64(b.client.Completed) / float64(b.client.Started)
	if frac < 0.99 {
		t.Fatalf("only %.2f%% completed at low rate (started=%d)", frac*100, b.client.Started)
	}
}

func TestVMKernelBottleneck(t *testing.T) {
	// A 1-vCPU server caps around MaxCPS(1) ≈ 15K CPS even though the
	// vSwitch could do more.
	b := newBed(t, 1)
	g := NewCRR(b.loop, b.loop.Rand(), b.client, ipS, 60000)
	g.Start()
	b.loop.Schedule(sim.Second, func() { g.Stop() })
	b.loop.RunAll()
	cps := float64(b.server.Accepted)
	want := MaxCPS(1)
	if cps > want*1.3 {
		t.Fatalf("server accepted %.0f CPS, kernel cap is %.0f", cps, want)
	}
	if b.server.KernelDrops == 0 {
		t.Fatal("no kernel drops under 4x overload")
	}
}

func TestFlowHolderDistinctFlows(t *testing.T) {
	b := newBed(t, 8)
	h := NewFlowHolder(b.loop, b.client, ipS, sim.Second)
	h.RampN(500, 100*sim.Millisecond)
	b.loop.RunAll()
	if h.Opened() != 500 {
		t.Fatalf("opened = %d", h.Opened())
	}
	// Each flow creates a session entry at both vSwitches.
	if got := b.swB.Sessions().Len(); got < 500 {
		t.Fatalf("server sessions = %d, want >= 500", got)
	}
}

func TestFlowHolderPortWrapVariesIP(t *testing.T) {
	b := newBed(t, 8)
	h := NewFlowHolder(b.loop, b.client, ipS, sim.Second)
	h.RampN(70000, 2*sim.Second) // wraps the 16-bit port space
	b.loop.RunAll()
	if got := b.swB.Sessions().Len(); got < 69000 {
		t.Fatalf("server sessions = %d, want ~70000 (5-tuples must stay distinct)", got)
	}
}

func TestFlowHolderKeepAliveDefeatsAging(t *testing.T) {
	b := newBed(t, 8)
	h := NewFlowHolder(b.loop, b.client, ipS, sim.Second)
	h.RampN(100, 50*sim.Millisecond)
	b.loop.RunAll()
	// Keepalive every 500ms for 3 s, sweeping as we go.
	for i := 1; i <= 6; i++ {
		b.loop.Schedule(sim.Time(i)*500*sim.Millisecond, func() {
			h.KeepAlive()
			b.swB.SweepSessions()
		})
	}
	b.loop.RunAll()
	if got := b.swB.Sessions().Len(); got < 100 {
		t.Fatalf("kept-alive sessions swept: %d", got)
	}
}

func TestSYNFloodSessionsAgeOut(t *testing.T) {
	b := newBed(t, 8)
	f := NewSYNFlood(b.loop, b.loop.Rand(), b.swA, 1, 7, ipC, ipS, 20000, &b.idGen)
	f.Start()
	b.loop.Schedule(500*sim.Millisecond, func() { f.Stop() })
	b.loop.RunAll()
	if f.Sent < 5000 {
		t.Fatalf("flood sent only %d", f.Sent)
	}
	peak := b.swB.Sessions().Len()
	if peak < 1000 {
		t.Fatalf("flood left only %d sessions", peak)
	}
	// Short SYN aging (§7.3) reclaims them.
	b.loop.Schedule(sim.Time(2*state.AgingSyn), func() { b.swB.SweepSessions() })
	b.loop.RunAll()
	if got := b.swB.Sessions().Len(); got != 0 {
		t.Fatalf("%d SYN sessions survived the short aging", got)
	}
}

func TestPingerLatencyThroughFastPath(t *testing.T) {
	b := newBed(t, 8)
	seen := 0
	b.swB.SetDelivery(func(vnic uint32, p *packet.Packet, lat sim.Time) {
		if p.PayloadLen > 0 {
			seen++
			if lat <= 0 || lat > sim.Millisecond {
				t.Errorf("latency %v out of expected band", lat)
			}
		}
	})
	pg := NewPinger(b.loop, b.client, ipS, 5000)
	pg.Run(10000, 100)
	b.loop.RunAll()
	if seen != 100 {
		t.Fatalf("delivered %d of 100 pinger packets", seen)
	}
	// One slow path (the SYN), the rest fast path.
	if b.swA.Stats.SlowPath != 1 {
		t.Fatalf("pinger took %d slow paths, want 1", b.swA.Stats.SlowPath)
	}
}

func TestCRRSetRate(t *testing.T) {
	b := newBed(t, 8)
	g := NewCRR(b.loop, b.loop.Rand(), b.client, ipS, 100)
	g.SetRate(200)
	if g.Rate() != 200 {
		t.Fatal("SetRate lost")
	}
}

func TestCRRStopHaltsOpens(t *testing.T) {
	b := newBed(t, 8)
	g := NewCRR(b.loop, b.loop.Rand(), b.client, ipS, 10000)
	g.Start()
	b.loop.Schedule(100*sim.Millisecond, func() { g.Stop() })
	b.loop.RunAll()
	started := b.client.Started
	if started == 0 {
		t.Fatal("nothing started")
	}
	// ~10000 * 0.1s = ~1000 expected; far fewer than a full second's
	// worth proves Stop worked.
	if math.Abs(float64(started)-1000) > 300 {
		t.Fatalf("started = %d, want ~1000 (Stop leaked?)", started)
	}
}
