package workload

import (
	"nezha/internal/packet"
	"nezha/internal/sim"
)

// ClosedCRR drives netperf TCP_CRR-style traffic in closed loop: a
// fixed number of workers each run connect / request / response /
// close transactions back to back, reopening as soon as the previous
// transaction completes (or times out). Closed-loop measurement is
// how CPS *capability* is obtained — throughput converges to the
// bottleneck's capacity instead of collapsing under overload the way
// an open-loop stream without retransmissions would.
type ClosedCRR struct {
	loop    *sim.Loop
	vm      *VM
	dst     packet.IPv4
	workers int
	timeout sim.Time
	sport   uint16
	done    bool

	// Abandoned counts transactions given up after the timeout.
	Abandoned uint64
}

// NewClosedCRR builds a closed-loop generator with the given worker
// count. timeout bounds one transaction before the worker abandons it
// and opens a fresh connection.
func NewClosedCRR(loop *sim.Loop, vm *VM, dst packet.IPv4, workers int, timeout sim.Time) *ClosedCRR {
	if workers < 1 {
		workers = 1
	}
	if timeout <= 0 {
		timeout = 100 * sim.Millisecond
	}
	return &ClosedCRR{loop: loop, vm: vm, dst: dst, workers: workers, timeout: timeout, sport: 1024}
}

// Start launches the workers.
func (g *ClosedCRR) Start() {
	g.done = false
	for i := 0; i < g.workers; i++ {
		g.next()
	}
}

// Stop finishes after in-flight transactions settle; workers do not
// reopen.
func (g *ClosedCRR) Stop() { g.done = true }

func (g *ClosedCRR) next() {
	if g.done {
		return
	}
	g.sport++
	if g.sport < 1024 {
		g.sport = 1024
	}
	sport := g.sport
	settled := false
	g.vm.OpenCB(sport, g.dst, ServerPort, func() {
		if settled {
			return
		}
		settled = true
		g.next()
	})
	g.loop.Schedule(g.timeout, func() {
		if settled {
			return
		}
		settled = true
		g.vm.Abort(sport)
		g.Abandoned++
		g.next()
	})
}

// Completed proxies the client VM's completed-transaction counter.
func (g *ClosedCRR) Completed() uint64 { return g.vm.Completed }
