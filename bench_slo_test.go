package nezha

// Latency-SLO overhead benchmarks: the same datapath rig run with the
// always-on SLO ledger (per-packet histogram observe, sketch update,
// burn evaluation) disabled and enabled. TestSLOOverheadGuard turns
// the pair into a CI gate: with SLO_BENCH_GUARD=1 it fails when the
// SLO-enabled datapath is more than 5% slower — the ledger is meant
// to be cheap enough to leave on everywhere — and merges the
// measurement into BENCH_obs.json next to the obs gate's keys.

import (
	"encoding/json"
	"os"
	"testing"

	"nezha/internal/cluster"
	"nezha/internal/packet"
	"nezha/internal/sim"
	"nezha/internal/slo"
	"nezha/internal/tables"
	"nezha/internal/vswitch"
	"nezha/internal/workload"
)

// runSLORig is runObsRig's twin with the latency ledger in place of
// the obs bundle: a small BE+clients cluster driven for 2 s of
// virtual time, returning the packets the datapaths processed.
func runSLORig(tr *slo.Tracker) uint64 {
	const (
		servers    = 4
		clients    = 3
		serverVNIC = 100
		vpc        = 7
	)
	serverIP := packet.MakeIP(10, 0, 100, 1)
	clientIP := func(i int) packet.IPv4 { return packet.MakeIP(10, 0, byte(1+i), 1) }
	c := cluster.New(cluster.Options{
		Servers: servers, Seed: 1,
		VSwitch: func(i int, cfg *vswitch.Config) {
			cfg.Cores = 2
			cfg.CoreHz = 500_000_000
		},
		SLO: tr,
	})
	_, err := c.AddVM(cluster.VMSpec{
		Server: clients, VNIC: serverVNIC, VPC: vpc, IP: serverIP, VCPUs: 64,
		MakeRules: func() *tables.RuleSet {
			rs := tables.NewRuleSet(serverVNIC, vpc)
			for i := 0; i < clients; i++ {
				rs.Route.Add(tables.MakePrefix(clientIP(i), 32), packet.IPv4(uint32(i+1)))
			}
			return rs
		},
	})
	if err != nil {
		panic(err)
	}
	serverNet := tables.MakePrefix(packet.MakeIP(10, 0, 100, 0), 24)
	var gens []*workload.CRR
	for i := 0; i < clients; i++ {
		vnic := uint32(i + 1)
		vm, err := c.AddVM(cluster.VMSpec{
			Server: i, VNIC: vnic, VPC: vpc, IP: clientIP(i), VCPUs: 8,
			MakeRules: cluster.TwoSubnetRules(vnic, vpc, serverNet, serverVNIC),
		})
		if err != nil {
			panic(err)
		}
		g := workload.NewCRR(c.Loop, c.Loop.Rand(), vm, serverIP, 1500)
		gens = append(gens, g)
		g.Start()
	}
	c.Start()
	c.Loop.Run(2 * sim.Second)
	for _, g := range gens {
		g.Stop()
	}
	var pkts uint64
	for _, vs := range c.Switches {
		pkts += vs.Stats.FromVM + vs.Stats.FromNet
	}
	return pkts
}

func benchDatapathSLO(b *testing.B, withSLO bool) {
	var pkts uint64
	for i := 0; i < b.N; i++ {
		var tr *slo.Tracker
		if withSLO {
			tr = slo.NewTracker(slo.Config{})
		}
		pkts += runSLORig(tr)
	}
	b.ReportMetric(float64(pkts)/b.Elapsed().Seconds(), "pkts/s")
}

func BenchmarkDatapathSLOOff(b *testing.B) { benchDatapathSLO(b, false) }
func BenchmarkDatapathSLOOn(b *testing.B)  { benchDatapathSLO(b, true) }

// TestSLOOverheadGuard is the CI benchmark gate (set SLO_BENCH_GUARD=1
// to run): best-of-three reps with the ledger off and on, merged into
// BENCH_obs.json (read-modify-write, so the obs gate's keys survive),
// failing when the overhead exceeds 5%.
func TestSLOOverheadGuard(t *testing.T) {
	if os.Getenv("SLO_BENCH_GUARD") == "" {
		t.Skip("set SLO_BENCH_GUARD=1 to run the SLO overhead gate")
	}
	const reps = 3
	const maxRatio = 1.05
	best := func(fn func(*testing.B)) int64 {
		bestNs := int64(0)
		for i := 0; i < reps; i++ {
			r := testing.Benchmark(fn)
			ns := r.NsPerOp()
			if bestNs == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	offNs := best(BenchmarkDatapathSLOOff)
	onNs := best(BenchmarkDatapathSLOOn)
	ratio := float64(onNs) / float64(offNs)

	merged := make(map[string]any)
	if raw, err := os.ReadFile("BENCH_obs.json"); err == nil {
		_ = json.Unmarshal(raw, &merged)
	}
	merged["slo_off_ns_per_op"] = offNs
	merged["slo_on_ns_per_op"] = onNs
	merged["slo_overhead_ratio"] = ratio
	merged["slo_overhead_pct"] = (ratio - 1) * 100
	merged["slo_max_ratio"] = maxRatio
	merged["slo_reps"] = reps
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile("BENCH_obs.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("slo off %d ns/op, on %d ns/op, overhead %.2f%%", offNs, onNs, (ratio-1)*100)
	if ratio > maxRatio {
		t.Errorf("SLO-enabled datapath is %.1f%% slower than disabled (limit 5%%); see BENCH_obs.json", (ratio-1)*100)
	}
}
