module nezha

go 1.22
